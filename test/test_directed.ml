(* Unit tests for the step-pattern language and the directed schedule
   driver: matching rules, skip semantics, every rejection kind, and the
   invisible-metadata unblocking rule. *)

open Vbl_sched
module Instr = Vbl_memops.Instr_mem

let access ?(kind = Instr.Read) name : Instr.access =
  { line = 1; name; kind; shadow = Instr.no_shadow }

let pattern_tests =
  [
    Alcotest.test_case "Read_node matches data cells of the node only" `Quick (fun () ->
        let p = Pattern.Read_node "X1" in
        Alcotest.(check bool) "val" true (Pattern.matches p (access "X1.val"));
        Alcotest.(check bool) "next" true (Pattern.matches p (access "X1.next"));
        Alcotest.(check bool) "amr" true (Pattern.matches p (access "X1.amr"));
        Alcotest.(check bool) "del is metadata" false (Pattern.matches p (access "X1.del"));
        Alcotest.(check bool) "lock is metadata" false (Pattern.matches p (access "X1.lock"));
        Alcotest.(check bool) "other node" false (Pattern.matches p (access "X2.val"));
        Alcotest.(check bool) "write kind" false
          (Pattern.matches p (access ~kind:Instr.Write "X1.val")));
    Alcotest.test_case "Read_node also matches touches" `Quick (fun () ->
        Alcotest.(check bool) "touch" true
          (Pattern.matches (Pattern.Read_node "X1") (access ~kind:Instr.Touch "X1.pair")));
    Alcotest.test_case "Write_node matches link writes and CAS" `Quick (fun () ->
        let p = Pattern.Write_node "h" in
        Alcotest.(check bool) "write next" true
          (Pattern.matches p (access ~kind:Instr.Write "h.next"));
        Alcotest.(check bool) "cas amr" true
          (Pattern.matches p (access ~kind:Instr.Cas "h.amr"));
        Alcotest.(check bool) "write val" false
          (Pattern.matches p (access ~kind:Instr.Write "h.val"));
        Alcotest.(check bool) "write del" false
          (Pattern.matches p (access ~kind:Instr.Write "h.del"));
        Alcotest.(check bool) "read next" false (Pattern.matches p (access "h.next")));
    Alcotest.test_case "Mark_node accepts del and link encodings" `Quick (fun () ->
        let p = Pattern.Mark_node "X2" in
        Alcotest.(check bool) "del write" true
          (Pattern.matches p (access ~kind:Instr.Write "X2.del"));
        Alcotest.(check bool) "link cas" true
          (Pattern.matches p (access ~kind:Instr.Cas "X2.next"));
        Alcotest.(check bool) "val write" false
          (Pattern.matches p (access ~kind:Instr.Write "X2.val")));
    Alcotest.test_case "lock patterns" `Quick (fun () ->
        Alcotest.(check bool) "lock" true
          (Pattern.matches (Pattern.Lock_node "X1") (access ~kind:Instr.Lock_try "X1.lock"));
        Alcotest.(check bool) "unlock" true
          (Pattern.matches (Pattern.Unlock_node "X1")
             (access ~kind:Instr.Lock_release "X1.lock"));
        Alcotest.(check bool) "lock vs unlock" false
          (Pattern.matches (Pattern.Lock_node "X1")
             (access ~kind:Instr.Lock_release "X1.lock")));
    Alcotest.test_case "New_node matches exactly" `Quick (fun () ->
        Alcotest.(check bool) "match" true
          (Pattern.matches (Pattern.New_node "X3") (access ~kind:Instr.New_node "X3"));
        Alcotest.(check bool) "other" false
          (Pattern.matches (Pattern.New_node "X3") (access ~kind:Instr.New_node "X30")));
    Alcotest.test_case "Exact requires kind and full name" `Quick (fun () ->
        let p = Pattern.Exact (Instr.Read, "X1.next") in
        Alcotest.(check bool) "exact" true (Pattern.matches p (access "X1.next"));
        Alcotest.(check bool) "kind" false
          (Pattern.matches p (access ~kind:Instr.Write "X1.next"));
        Alcotest.(check bool) "name" false (Pattern.matches p (access "X1.val")));
    Alcotest.test_case "success requirements" `Quick (fun () ->
        Alcotest.(check bool) "write" true (Pattern.requires_success (Pattern.Write_node "a"));
        Alcotest.(check bool) "mark" true (Pattern.requires_success (Pattern.Mark_node "a"));
        Alcotest.(check bool) "lock" true (Pattern.requires_success (Pattern.Lock_node "a"));
        Alcotest.(check bool) "read" false (Pattern.requires_success (Pattern.Read_node "a"));
        Alcotest.(check bool) "exact" false
          (Pattern.requires_success (Pattern.Exact (Instr.Cas, "a"))));
    Alcotest.test_case "node/field decomposition" `Quick (fun () ->
        Alcotest.(check string) "node" "X12" (Pattern.node_of_cell "X12.next");
        Alcotest.(check string) "field" "next" (Pattern.field_of_cell "X12.next");
        Alcotest.(check string) "bare node" "X12" (Pattern.node_of_cell "X12");
        Alcotest.(check string) "bare field" "" (Pattern.field_of_cell "X12"));
  ]

(* Directed-driver behaviour on a tiny custom scenario built from raw
   instrumented cells (no list needed). *)
let make_cells () =
  let line = Instr.fresh_line () in
  let a = Instr.make ~name:"X1.next" ~line 0 in
  let lock = Instr.make_lock ~name:"X1.lock" ~line () in
  (a, lock)

let driver_tests =
  [
    Alcotest.test_case "skips non-matching steps to find the match" `Quick (fun () ->
        let a, _ = make_cells () in
        let results = [| None |] in
        let bodies =
          [
            (fun () ->
              ignore (Instr.get a);
              ignore (Instr.get a);
              Instr.set a 7;
              results.(0) <- Some true);
          ]
        in
        let outcome =
          Directed.run ~bodies ~results
            ~script:[ Directed.Step (0, Pattern.Write_node "X1"); Directed.Ret (0, true) ]
        in
        Alcotest.(check bool) "accepted" true (Directed.accepted outcome));
    Alcotest.test_case "Completed_early when the thread finishes first" `Quick (fun () ->
        let a, _ = make_cells () in
        let results = [| None |] in
        let bodies = [ (fun () -> ignore (Instr.get a)) ] in
        match
          Directed.run ~bodies ~results
            ~script:[ Directed.Step (0, Pattern.Write_node "X1") ]
        with
        | Directed.Rejected { reason = Directed.Completed_early _; _ } -> ()
        | _ -> Alcotest.fail "expected Completed_early");
    Alcotest.test_case "Wrong_result on a mismatched return" `Quick (fun () ->
        let a, _ = make_cells () in
        let results = [| None |] in
        let bodies =
          [
            (fun () ->
              ignore (Instr.get a);
              results.(0) <- Some false);
          ]
        in
        match Directed.run ~bodies ~results ~script:[ Directed.Ret (0, true) ] with
        | Directed.Rejected { reason = Directed.Wrong_result { expected = true; got = Some false; _ }; _ }
          -> ()
        | _ -> Alcotest.fail "expected Wrong_result");
    Alcotest.test_case "Step_failed on an ineffective CAS" `Quick (fun () ->
        let a, _ = make_cells () in
        let results = [| None |] in
        let bodies =
          [
            (fun () ->
              (* expected value is stale: the CAS must fail *)
              ignore (Instr.cas a 999 5);
              results.(0) <- Some true);
          ]
        in
        match
          Directed.run ~bodies ~results
            ~script:[ Directed.Step (0, Pattern.Write_node "X1") ]
        with
        | Directed.Rejected { reason = Directed.Step_failed _; _ } -> ()
        | _ -> Alcotest.fail "expected Step_failed");
    Alcotest.test_case "Thread_blocked when a held lock blocks a data step" `Quick
      (fun () ->
        let a, lock = make_cells () in
        let results = [| None; None |] in
        let bodies =
          [
            (fun () ->
              Instr.lock lock;
              Instr.set a 1 (* data step under lock: not invisible *);
              Instr.unlock lock;
              results.(0) <- Some true);
            (fun () ->
              Instr.lock lock;
              Instr.unlock lock;
              results.(1) <- Some true);
          ]
        in
        (* Let thread 0 take the lock, then demand thread 1 complete. *)
        match
          Directed.run ~bodies ~results
            ~script:
              [ Directed.Step (0, Pattern.Lock_node "X1"); Directed.Ret (1, true) ]
        with
        | Directed.Rejected { reason = Directed.Thread_blocked { tid = 1; _ }; _ } -> ()
        | Directed.Accepted _ -> Alcotest.fail "expected rejection"
        | Directed.Rejected { reason; _ } ->
            Alcotest.failf "wrong rejection: %a" Directed.pp_rejection reason);
    Alcotest.test_case "unlock is invisible: driver drains it to unblock" `Quick
      (fun () ->
        let _, lock = make_cells () in
        let results = [| None; None |] in
        let bodies =
          [
            (fun () ->
              Instr.lock lock;
              Instr.unlock lock (* nothing but metadata after the lock *);
              results.(0) <- Some true);
            (fun () ->
              Instr.lock lock;
              Instr.unlock lock;
              results.(1) <- Some true);
          ]
        in
        (* Thread 0 grabs the lock; thread 1 must still be able to finish
           because thread 0's remaining steps are all invisible. *)
        let outcome =
          Directed.run ~bodies ~results
            ~script:
              [
                Directed.Step (0, Pattern.Lock_node "X1");
                Directed.Ret (1, true);
                Directed.Ret (0, true);
              ]
        in
        Alcotest.(check bool) "accepted" true (Directed.accepted outcome));
  ]

(* Optimality schedule suites for the tree and skip-list families: the
   Figure-2 argument of the paper transplanted to the other structures.
   Each accepted schedule pins the step names of a "decide while someone
   else holds the window" interleaving and must complete verbatim on the
   versioned-lock implementation; the same abstract schedule is refused
   by the lock-first baseline with the pinned rejection kind. *)

let vbl_bst : Drive.impl = (module Vbl_trees.Registry.Vbl_bst_i)
let lazy_bst : Drive.impl = (module Vbl_trees.Registry.Lazy_bst_i)
let vbl_skip : Drive.impl = (module Vbl_skiplists.Registry.Vbl_skip_i)
let lazy_skip : Drive.impl = (module Vbl_skiplists.Registry.Lazy_skip_i)

let check_accepted outcome =
  match outcome with
  | Directed.Accepted _ -> ()
  | Directed.Rejected { at; reason; _ } ->
      Alcotest.failf "rejected at directive %d: %a" at Directed.pp_rejection reason

let bst_tests =
  [
    Alcotest.test_case "vbl-bst accepts the decide-without-locking schedule" `Quick
      (fun () ->
        (* Thread 1's insert 2 parks holding N1's tree lock; thread 0's
           insert 1 still decides "already present" and returns with zero
           lock acquisitions — the zero-locks read path the versioned
           windows buy (paper section 2.2). *)
        check_accepted
          (Drive.run_script vbl_bst ~initial:[ 1 ]
             ~ops:[ Ll_abstract.insert 1; Ll_abstract.insert 2 ]
             [
               Directed.Step (1, Pattern.New_node "N2");
               Directed.Step (1, Pattern.Lock_node "N1");
               Directed.Step (0, Pattern.Read_node "rt");
               Directed.Step (0, Pattern.Exact (Instr.Read, "N1.del"));
               Directed.Ret (0, false);
               Directed.Ret (1, true);
             ]));
    Alcotest.test_case "lazy-bst refuses it: the present-check blocks" `Quick (fun () ->
        (* The same abstract schedule on the lock-first baseline: thread 0
           cannot decide "present" without R1's lock, which thread 1
           holds — the schedule is rejected with Thread_blocked, exactly
           the lazy list's Figure-2 argument. *)
        match
          Drive.run_script lazy_bst ~initial:[ 1 ]
            ~ops:[ Ll_abstract.insert 1; Ll_abstract.insert 2 ]
            [
              Directed.Step (1, Pattern.Lock_node "R1");
              Directed.Ret (0, false);
            ]
        with
        | Directed.Rejected { reason = Directed.Thread_blocked { tid = 0; lock }; _ } ->
            Alcotest.(check string) "blocking lock" "R1.lock" lock
        | Directed.Accepted _ -> Alcotest.fail "lazy-bst accepted a blocked schedule"
        | Directed.Rejected { reason; _ } ->
            Alcotest.failf "wrong rejection: %a" Directed.pp_rejection reason);
    Alcotest.test_case "vbl-bst refuses the lost-update schedule" `Quick (fun () ->
        (* Both inserts fall off the empty root slot; after thread 0 links
           N1 (bumping rt.ver), a script demanding thread 1 still link
           into rt is refused: the version validation fails and thread 1
           relocates, linking under N1 instead — it completes without
           ever writing rt's window. *)
        match
          Drive.run_script vbl_bst ~initial:[]
            ~ops:[ Ll_abstract.insert 1; Ll_abstract.insert 2 ]
            [
              Directed.Step (1, Pattern.New_node "N2");
              Directed.Ret (0, true);
              Directed.Step (1, Pattern.Write_node "rt");
            ]
        with
        | Directed.Rejected { at = 2; reason = Directed.Completed_early { tid = 1; _ }; _ }
          -> ()
        | Directed.Accepted _ -> Alcotest.fail "vbl-bst performed a stale-window write"
        | Directed.Rejected { reason; _ } ->
            Alcotest.failf "wrong rejection: %a" Directed.pp_rejection reason);
  ]

let skiplist_tests =
  [
    Alcotest.test_case "vbl-skiplist accepts insert ahead of a marked victim" `Quick
      (fun () ->
        (* Thread 0 marks X2 and parks before splicing; thread 1's insert
           of 1 validates the window with the marked successor still in
           place (the relaxed validation tolerates it: the remover
           re-routes through the new node) and links. The parked remove
           then revalidates, re-finds and splices behind X1. *)
        check_accepted
          (Drive.run_script vbl_skip ~initial:[ 2 ]
             ~ops:[ Ll_abstract.remove 2; Ll_abstract.insert 1 ]
             [
               Directed.Step (0, Pattern.Lock_node "X2");
               Directed.Step (0, Pattern.Mark_node "X2");
               Directed.Step (1, Pattern.Lock_node "h");
               Directed.Step (1, Pattern.New_node "X1");
               Directed.Step (1, Pattern.Write_node "h");
               Directed.Ret (1, true);
               Directed.Ret (0, true);
             ]));
    Alcotest.test_case "lazy-skiplist refuses it: validation wants unmarked succs" `Quick
      (fun () ->
        (* Same schedule on the lazy skip list: its insert validation also
           requires the successor unmarked, so with X2 marked and its
           remover parked, thread 1 retries forever and never reaches
           new(X1). *)
        match
          Drive.run_script lazy_skip ~initial:[ 2 ]
            ~ops:[ Ll_abstract.remove 2; Ll_abstract.insert 1 ]
            [
              Directed.Step (0, Pattern.Lock_node "X2");
              Directed.Step (0, Pattern.Mark_node "X2");
              Directed.Step (1, Pattern.Lock_node "h");
              Directed.Step (1, Pattern.New_node "X1");
            ]
        with
        | Directed.Rejected { at = 3; reason = Directed.No_matching_step { tid = 1; _ }; _ }
          -> ()
        | Directed.Accepted _ ->
            Alcotest.fail "lazy-skiplist linked in front of a marked node"
        | Directed.Rejected { reason; _ } ->
            Alcotest.failf "wrong rejection: %a" Directed.pp_rejection reason);
    Alcotest.test_case "head lock serialises concurrent skip-list inserts" `Quick
      (fun () ->
        (* Contrast with the list/BST lost-update scripts: in the tower
           scheme both inserts must lock the shared predecessor h before
           writing, so the overwrite schedule is not just invalidated, it
           is structurally blocked. *)
        match
          Drive.run_script vbl_skip ~initial:[]
            ~ops:[ Ll_abstract.insert 1; Ll_abstract.insert 2 ]
            [
              Directed.Step (0, Pattern.Lock_node "h");
              Directed.Step (1, Pattern.Write_node "h");
            ]
        with
        | Directed.Rejected { at = 1; reason = Directed.Thread_blocked { tid = 1; lock }; _ }
          ->
            Alcotest.(check string) "blocking lock" "h.lock" lock
        | Directed.Accepted _ -> Alcotest.fail "insert wrote h without h's lock"
        | Directed.Rejected { reason; _ } ->
            Alcotest.failf "wrong rejection: %a" Directed.pp_rejection reason);
  ]

let () =
  Alcotest.run "directed"
    [
      ("pattern", pattern_tests);
      ("driver", driver_tests);
      ("bst optimality", bst_tests);
      ("skiplist optimality", skiplist_tests);
    ]
