(* Tests for the external BST extension: sequential semantics against the
   Set model, structural invariants, bounded model checking through the
   generic explorer, and real-domain stress with linearizability. *)

module IntSet = Set.Make (Int)

let impls = Vbl_trees.Registry.all

let unit_tests (impl : Vbl_trees.Registry.impl) =
  let module S = (val impl) in
  let mk name fn = Alcotest.test_case (S.name ^ ": " ^ name) `Quick fn in
  [
    mk "empty" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "contains" false (S.contains t 1);
        Alcotest.(check (list int)) "to_list" [] (S.to_list t);
        Alcotest.(check bool) "invariants" true (S.check_invariants t = Ok ()));
    mk "insert then contains" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "insert" true (S.insert t 42);
        Alcotest.(check bool) "dup" false (S.insert t 42);
        Alcotest.(check bool) "present" true (S.contains t 42);
        Alcotest.(check bool) "absent" false (S.contains t 41));
    mk "remove down to empty and refill" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ 5; 2; 8 ];
        Alcotest.(check bool) "rm 2" true (S.remove t 2);
        Alcotest.(check bool) "rm 5" true (S.remove t 5);
        Alcotest.(check bool) "rm 8" true (S.remove t 8);
        Alcotest.(check (list int)) "empty" [] (S.to_list t);
        Alcotest.(check bool) "refill" true (S.insert t 7);
        Alcotest.(check (list int)) "again" [ 7 ] (S.to_list t);
        Alcotest.(check bool) "invariants" true (S.check_invariants t = Ok ()));
    mk "ascending/descending insertions stay ordered" (fun () ->
        let t = S.create () in
        for v = 1 to 50 do
          ignore (S.insert t v)
        done;
        let u = S.create () in
        for v = 50 downto 1 do
          ignore (S.insert u v)
        done;
        let expected = List.init 50 (fun i -> i + 1) in
        Alcotest.(check (list int)) "asc" expected (S.to_list t);
        Alcotest.(check (list int)) "desc" expected (S.to_list u);
        Alcotest.(check bool) "inv asc" true (S.check_invariants t = Ok ());
        Alcotest.(check bool) "inv desc" true (S.check_invariants u = Ok ()));
    mk "negative keys" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ -5; 0; 5; -50 ];
        Alcotest.(check (list int)) "sorted" [ -50; -5; 0; 5 ] (S.to_list t);
        Alcotest.(check bool) "rm -5" true (S.remove t (-5));
        Alcotest.(check (list int)) "after" [ -50; 0; 5 ] (S.to_list t));
    mk "sentinel keys rejected" (fun () ->
        let t = S.create () in
        Alcotest.check_raises "min_int"
          (Invalid_argument "bst: key must be strictly between min_int and max_int")
          (fun () -> ignore (S.insert t min_int)));
  ]

(* Range-operation semantics, derived for every implementation from the
   presence-aware ascending fold (Set_intf.Derive). *)
let range_tests (impl : Vbl_trees.Registry.impl) =
  let module S = (val impl) in
  let mk name fn = Alcotest.test_case (S.name ^ ": " ^ name) `Quick fn in
  [
    mk "range edge cases" (fun () ->
        let t = S.create () in
        Alcotest.(check (list int)) "empty tree" [] (S.range_query t min_int max_int);
        List.iter (fun v -> ignore (S.insert t v)) [ 1; 3; 5; 7 ];
        Alcotest.(check (list int)) "inverted bounds" [] (S.range_query t 5 3);
        Alcotest.(check (list int)) "inclusive bounds" [ 3; 5 ] (S.range_query t 3 5);
        Alcotest.(check (list int)) "straddling bounds" [ 3; 5 ] (S.range_query t 2 6);
        Alcotest.(check (list int)) "singleton hit" [ 7 ] (S.range_query t 7 7);
        Alcotest.(check (list int)) "gap" [] (S.range_query t 4 4);
        Alcotest.(check (list int)) "full range equals to_list" (S.to_list t)
          (S.range_query t min_int max_int));
    mk "iter and approx_size agree with fold" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ 2; 9; 4 ];
        let seen = ref [] in
        S.iter (fun v -> seen := v :: !seen) t;
        Alcotest.(check (list int)) "iter ascending" [ 2; 4; 9 ] (List.rev !seen);
        Alcotest.(check int) "approx_size" 3 (S.approx_size t));
  ]

type op = Insert of int | Remove of int | Contains of int

let pp_op = function
  | Insert v -> Printf.sprintf "insert %d" v
  | Remove v -> Printf.sprintf "remove %d" v
  | Contains v -> Printf.sprintf "contains %d" v

let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 0 200)
      (let* v = int_range (-25) 25 in
       oneofl [ Insert v; Remove v; Contains v ]))

let agrees_with_model (impl : Vbl_trees.Registry.impl) ops =
  let module S = (val impl) in
  let t = S.create () in
  let model = ref IntSet.empty in
  let step op =
    match op with
    | Insert v ->
        let expected = not (IntSet.mem v !model) in
        model := IntSet.add v !model;
        S.insert t v = expected
    | Remove v ->
        let expected = IntSet.mem v !model in
        model := IntSet.remove v !model;
        S.remove t v = expected
    | Contains v -> S.contains t v = IntSet.mem v !model
  in
  List.for_all step ops
  && S.to_list t = IntSet.elements !model
  && S.check_invariants t = Ok ()

let property_tests impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200
         ~name:(S.name ^ ": random ops agree with Set model")
         ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
         ops_gen (agrees_with_model impl));
  ]

(* Bounded model checking through the generic explorer glue. *)
let explore_tests =
  let config =
    { Vbl_sched.Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }
  in
  let lin_ok name impl initial ops =
    Alcotest.test_case (name ^ ": interleavings linearizable") `Slow (fun () ->
        let scenario = Vbl_sched.Drive.explore_scenario impl ~initial ~ops in
        let r = Vbl_sched.Explore.run ~config scenario in
        Alcotest.(check bool) "not truncated" false r.Vbl_sched.Explore.truncated;
        match r.Vbl_sched.Explore.failure with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Vbl_sched.Explore.pp_failure f)
  in
  let vbl = (module Vbl_trees.Registry.Vbl_bst_i : Vbl_lists.Set_intf.S) in
  let coarse = (module Vbl_trees.Registry.Coarse_bst_i : Vbl_lists.Set_intf.S) in
  [
    lin_ok "vbl-bst inserts" vbl [] [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 2 ];
    lin_ok "vbl-bst insert vs remove" vbl [ 2 ]
      [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.remove 2 ];
    lin_ok "vbl-bst removes" vbl [ 1; 2 ]
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.remove 2 ];
    lin_ok "vbl-bst same-key insert/remove" vbl [ 1 ]
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.insert 1 ];
    lin_ok "vbl-bst contains during remove" vbl [ 1 ]
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.contains 1 ];
    lin_ok "vbl-bst remove last leaf race" vbl [ 3 ]
      [ Vbl_sched.Ll_abstract.remove 3; Vbl_sched.Ll_abstract.insert 5 ];
    lin_ok "coarse-bst inserts" coarse []
      [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 2 ];
    Alcotest.test_case "sequential-bst caught by the explorer (canary)" `Slow (fun () ->
        (* Both inserts race on the empty tree's single leaf slot. *)
        let scenario =
          Vbl_sched.Drive.explore_scenario
            (module Vbl_trees.Registry.Seq_bst_i)
            ~initial:[]
            ~ops:[ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 3 ]
        in
        let r = Vbl_sched.Explore.run ~config scenario in
        match r.Vbl_sched.Explore.failure with
        | Some _ -> ()
        | None -> Alcotest.fail "expected the unsynchronised BST to fail");
  ]

(* Range queries under exploration: a 3-thread scenario per tree — the
   range thread races two mutators and the whole-state Multikey checker
   judges every interleaving (Drive.explore_range_scenario).  Bounded
   scope: two mutators never reach the six-update ABA toggle that
   defeats the derived double-collect (see the Derive canary in
   test_lists_seq.ml). *)
let range_explore_tests =
  let config =
    { Vbl_sched.Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }
  in
  let range_ok name impl initial range ops =
    Alcotest.test_case (name ^ ": range query linearizable") `Slow (fun () ->
        let scenario = Vbl_sched.Drive.explore_range_scenario impl ~initial ~range ~ops in
        let r = Vbl_sched.Explore.run ~config scenario in
        Alcotest.(check bool) "not truncated" false r.Vbl_sched.Explore.truncated;
        match r.Vbl_sched.Explore.failure with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Vbl_sched.Explore.pp_failure f)
  in
  [
    range_ok "vbl-bst"
      (module Vbl_trees.Registry.Vbl_bst_i)
      [ 1; 3 ] (1, 3)
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.insert 2 ];
    range_ok "coarse-bst"
      (module Vbl_trees.Registry.Coarse_bst_i)
      [ 2 ] (1, 3)
      [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.remove 2 ];
    Alcotest.test_case "sequential-bst range caught (canary)" `Slow (fun () ->
        let scenario =
          Vbl_sched.Drive.explore_range_scenario
            (module Vbl_trees.Registry.Seq_bst_i)
            ~initial:[] ~range:(1, 3)
            ~ops:[ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 3 ]
        in
        let r = Vbl_sched.Explore.run ~config scenario in
        match r.Vbl_sched.Explore.failure with
        | Some (Vbl_sched.Explore.Invariant_broken _) -> ()
        | Some f -> Alcotest.failf "unexpected failure: %a" Vbl_sched.Explore.pp_failure f
        | None -> Alcotest.fail "expected the unsynchronised BST range to fail");
  ]

(* Real-domain stress with linearizability (same harness as the lists). *)
let stress (impl : Vbl_trees.Registry.impl) ~domains ~ops_per_domain ~key_range ~update_percent
    ~seed =
  let module S = (val impl) in
  let module H = Vbl_spec.History in
  let t = S.create () in
  let master = Vbl_util.Rng.create ~seed () in
  let initial = ref [] in
  for v = 1 to key_range do
    if Vbl_util.Rng.bool master then if S.insert t v then initial := v :: !initial
  done;
  let recorder = H.Recorder.create () in
  let seeds = Array.init domains (fun _ -> Vbl_util.Rng.split master) in
  let worker d () =
    let rng = seeds.(d) in
    for _ = 1 to ops_per_domain do
      let v = 1 + Vbl_util.Rng.int rng key_range in
      let roll = Vbl_util.Rng.int rng 100 in
      let op : Vbl_spec.Set_model.op =
        if roll < update_percent then
          if roll mod 2 = 0 then Vbl_spec.Set_model.Insert v else Vbl_spec.Set_model.Remove v
        else Vbl_spec.Set_model.Contains v
      in
      ignore
        (H.Recorder.record recorder ~thread:d op (fun op ->
             match op with
             | Vbl_spec.Set_model.Insert v -> S.insert t v
             | Vbl_spec.Set_model.Remove v -> S.remove t v
             | Vbl_spec.Set_model.Contains v -> S.contains t v))
    done
  in
  List.iter Domain.join (List.init domains (fun d -> Domain.spawn (worker d)));
  let invariants = S.check_invariants t in
  let final = S.to_list t in
  let entries =
    List.map
      (fun (o : H.operation) ->
        (o.thread, o.index, o.op, o.invoked_at, o.completion, o.returned_at))
      (H.operations (H.Recorder.history recorder))
  in
  let horizon = 1 + List.fold_left (fun acc (_, _, _, _, _, r) -> max acc r) 0 entries in
  let seed_entries =
    List.mapi
      (fun k v ->
        (1000 + k, 0, Vbl_spec.Set_model.Insert v, -2 * (k + 1), H.Returned true, (-2 * (k + 1)) + 1))
      (List.sort_uniq compare !initial)
  in
  let probes =
    List.mapi
      (fun k v ->
        ( 2000 + k,
          0,
          Vbl_spec.Set_model.Contains v,
          horizon + (2 * k) + 1,
          H.Returned (List.mem v final),
          horizon + (2 * k) + 2 ))
      (List.init key_range (fun i -> i + 1))
  in
  (invariants, Vbl_spec.Linearizability.check (H.of_list (seed_entries @ entries @ probes)))

let stress_tests =
  List.map
    (fun impl ->
      let module S = (val impl : Vbl_lists.Set_intf.S) in
      Alcotest.test_case (S.name ^ ": domain stress linearizable") `Slow (fun () ->
          List.iteri
            (fun i (domains, ops, range, update) ->
              let invariants, linearizable =
                stress impl ~domains ~ops_per_domain:ops ~key_range:range
                  ~update_percent:update ~seed:(Int64.of_int (70 + i))
              in
              (match invariants with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "config %d: %s" i msg);
              if not linearizable then Alcotest.failf "config %d: non-linearizable" i)
            [ (4, 300, 8, 60); (4, 300, 64, 20); (2, 800, 4, 100); (8, 150, 16, 40) ]))
    Vbl_trees.Registry.concurrent

let () =
  Alcotest.run "trees"
    (List.map
       (fun impl ->
         let module S = (val impl : Vbl_lists.Set_intf.S) in
         (S.name, unit_tests impl @ range_tests impl @ property_tests impl))
       impls
    @ [
        ("explore", explore_tests);
        ("range explore", range_explore_tests);
        ("stress", stress_tests);
      ])
