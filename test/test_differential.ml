(* Cross-implementation differential stress.

   Two oracles, both built on the same ownership discipline: keys are
   partitioned across logical threads (key k belongs to thread k mod T),
   writers only touch their own keys, and contains probes roam freely.
   Because each key has a single writer, every insert/remove result is
   determined by the owner's program order alone — a thread-local
   sequential model predicts it — and the final surviving key set equals
   the per-key last write, which a sequential [Seq_list] replay of the
   logs reconstructs.  Any divergence (wrong write result, wrong final
   set, broken invariants, deadlock) prints the seed and an op-log
   prefix so the schedule can be replayed.

   Mode 1 runs real domains (preemption-driven interleavings, every
   registry implementation plus the sharded frontends).  Mode 2 runs the
   instrumented backend under a seeded random scheduler — dejafu-style
   randomized testing that complements the DPOR explorer: coarser than
   exhaustive exploration, but cheap enough to run every implementation
   (and the seeded mutants of lib/analysis, which it must catch) on
   every `dune runtest`.  Mode 3 differentially checks the sharded batch
   API against one-at-a-time application. *)

module Rng = Vbl_util.Rng
module Seq = Vbl_lists.Registry.Sequential
module Instr = Vbl_memops.Instr_mem
module Exec = Vbl_sched.Exec
module Obs = Vbl_obs

(* Every mode runs with the flight recorder on, so a divergence ships the
   recent-operation timeline alongside the seed and log prefix. *)
let with_recorder f =
  Obs.Recorder.reset ();
  Obs.Recorder.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Recorder.set_enabled false) f

(* Alcotest.failf with the flight-recorder timeline appended; the dump is
   taken while building the message, before the exception unwinds past
   [with_recorder]'s disable. *)
let failf_dump fmt =
  Printf.ksprintf (fun msg -> Alcotest.fail (msg ^ "\n" ^ Obs.Recorder.dump ())) fmt

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* An owner-keyed write: [ins]=true for insert.  Logs keep program order
   per thread; replaying thread logs in any thread order reconstructs the
   final set because each key's writes all live in one log. *)
type write = { ins : bool; key : int; got : bool }

let log_prefix ?(n = 12) log =
  String.concat "; "
    (List.filteri (fun i _ -> i < n)
       (List.map
          (fun w -> Printf.sprintf "%s %d -> %b" (if w.ins then "ins" else "rem") w.key w.got)
          log))

let replay_final logs =
  let replica = Seq.create () in
  Array.iter
    (fun log ->
      List.iter
        (fun w -> ignore (if w.ins then Seq.insert replica w.key else Seq.remove replica w.key))
        log)
    logs;
  Seq.to_list replica

(* ------------------------------------------------------------------ *)
(* Mode 1: real domains                                                *)
(* ------------------------------------------------------------------ *)

let real_stress impl ~domains ~total_ops ~key_range ~update_percent ~seed =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  let t = S.create () in
  let per_domain = total_ops / domains in
  let slots = key_range / domains in
  let logs = Array.make domains [] in
  let first_mismatch = Array.make domains None in
  let worker d () =
    let rng = Rng.stream ~seed ~index:d in
    let model = Array.make (key_range + 1) false in
    let log = ref [] in
    for i = 1 to per_domain do
      let roll = Rng.int rng 100 in
      if roll < update_percent then begin
        let k = 1 + d + (domains * Rng.int rng slots) in
        let ins = Rng.bool rng in
        let t0 = if !Obs.Recorder.enabled then Obs.Contention.now_ns () else 0 in
        let got = if ins then S.insert t k else S.remove t k in
        if !Obs.Recorder.enabled then
          Obs.Recorder.record ~thread:d
            ~kind:(if ins then Obs.Recorder.Insert else Obs.Recorder.Remove)
            ~key:k ~shard:(-1) ~ok:got ~restarts:0 ~t0_ns:t0
            ~t1_ns:(Obs.Contention.now_ns ());
        let want = if ins then not model.(k) else model.(k) in
        model.(k) <- ins;
        log := { ins; key = k; got } :: !log;
        if got <> want && first_mismatch.(d) = None then
          first_mismatch.(d) <- Some (i, k, want, got)
      end
      else begin
        let k = 1 + Rng.int rng key_range in
        let t0 = if !Obs.Recorder.enabled then Obs.Contention.now_ns () else 0 in
        let got = S.contains t k in
        if !Obs.Recorder.enabled then
          Obs.Recorder.record ~thread:d ~kind:Obs.Recorder.Contains ~key:k ~shard:(-1)
            ~ok:got ~restarts:0 ~t0_ns:t0 ~t1_ns:(Obs.Contention.now_ns ())
      end
    done;
    logs.(d) <- List.rev !log
  in
  List.iter Domain.join (List.init domains (fun d -> Domain.spawn (worker d)));
  Array.iteri
    (fun d m ->
      match m with
      | Some (i, k, want, got) ->
          failf_dump
            "%s: seed %Ld: domain %d op %d on key %d returned %b, single-writer model \
             says %b\n  domain %d log prefix: %s"
            S.name seed d i k got want d (log_prefix logs.(d))
      | None -> ())
    first_mismatch;
  (match S.check_invariants t with
  | Ok () -> ()
  | Error m -> failf_dump "%s: seed %Ld: invariants after stress: %s" S.name seed m);
  let final = S.to_list t in
  let expected = replay_final logs in
  if final <> expected then
    failf_dump
      "%s: seed %Ld: surviving keys diverge from Seq_list replay of the per-key \
       last-write history\n  got     : %s\n  expected: %s\n  domain 0 log prefix: %s"
      S.name seed
      (String.concat "," (List.map string_of_int final))
      (String.concat "," (List.map string_of_int expected))
      (log_prefix logs.(0))

let real_case impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  Alcotest.test_case (S.name ^ ": 4-domain differential stress") `Quick (fun () ->
      with_recorder (fun () ->
          real_stress impl ~domains:4 ~total_ops:50_000 ~key_range:96 ~update_percent:40
            ~seed:1337L))

(* Churn-heavy stress for the reclaiming implementations: 90% updates on
   a small key range retires and recycles the same nodes continuously
   across 4 domains, the workload where a reclamation bug (premature
   recycle, double retire, stale free-list entry) diverges from the
   single-writer model.  Two seeds for schedule diversity. *)
let churn_case impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  Alcotest.test_case (S.name ^ ": 4-domain churn-heavy reclaim stress") `Quick
    (fun () ->
      with_recorder (fun () ->
          List.iter
            (fun seed ->
              real_stress impl ~domains:4 ~total_ops:60_000 ~key_range:32
                ~update_percent:90 ~seed)
            [ 7L; 90210L ]))

(* ------------------------------------------------------------------ *)
(* Mode 2: instrumented backend, seeded random scheduler               *)
(* ------------------------------------------------------------------ *)

type iop = I of int | R of int | C of int

(* One execution under a random schedule.  [Ok ()] when the run completes
   and matches both oracles; [Error description] on any divergence.  The
   step budget bounds livelock; genuine algorithms finish 3x10 ops within
   a few hundred steps.  On divergence the failing schedule is shrunk
   (see {!Vbl_sched.Shrink}) by replaying fresh instances of the same
   plan, and the locally minimal schedule is appended to the message. *)
let instr_run impl ~threads ~ops_per_thread ~key_range ~update_percent ~seed =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  let gen = Rng.create ~seed:(Int64.of_int (0x5eed + (seed * 2654435761))) () in
  let slots = max 1 (key_range / threads) in
  let plans =
    Array.init threads (fun d ->
        Array.init ops_per_thread (fun _ ->
            let roll = Rng.int gen 100 in
            if roll < update_percent then begin
              let k = 1 + d + (threads * Rng.int gen slots) in
              if Rng.bool gen then I k else R k
            end
            else C (1 + Rng.int gen key_range)))
  in
  (* Fresh bodies + the differential oracle over their results: one call
     per execution, so the shrinker can replay edited schedules against
     independent instances of the same plan. *)
  let make_instance () =
    let t = Instr.run_sequential (fun () -> S.create ()) in
    let results = Array.map (fun plan -> Array.make (Array.length plan) false) plans in
    let body d () =
      Array.iteri
        (fun i op ->
          let t0 = Obs.Contention.now_ns () in
          let ok =
            match op with I k -> S.insert t k | R k -> S.remove t k | C k -> S.contains t k
          in
          results.(d).(i) <- ok;
          let kind, key =
            match op with
            | I k -> (Obs.Recorder.Insert, k)
            | R k -> (Obs.Recorder.Remove, k)
            | C k -> (Obs.Recorder.Contains, k)
          in
          (* Wall-clock stamps interleave across logical threads (one OS
             domain runs them all), but stay monotonic, which is all the
             dump's ordering needs. *)
          Obs.Recorder.record ~thread:d ~kind ~key ~shard:(-1) ~ok ~restarts:0 ~t0_ns:t0
            ~t1_ns:(Obs.Contention.now_ns ()))
        plans.(d)
    in
    (* Oracle 1: single-writer results.  Oracle 2: final set = replay. *)
    let oracle () =
      let logs = Array.make threads [] in
      let mismatch = ref None in
      Array.iteri
        (fun d plan ->
          let model = Array.make (key_range + 1) false in
          let log = ref [] in
          Array.iteri
            (fun i op ->
              match op with
              | C _ -> ()
              | I k | R k ->
                  let ins = match op with I _ -> true | _ -> false in
                  let want = if ins then not model.(k) else model.(k) in
                  model.(k) <- ins;
                  log := { ins; key = k; got = results.(d).(i) } :: !log;
                  if results.(d).(i) <> want && !mismatch = None then
                    mismatch := Some (d, i, k, want, results.(d).(i)))
            plan;
          logs.(d) <- List.rev !log)
        plans;
      match !mismatch with
      | Some (d, i, k, want, got) ->
          Error
            (Printf.sprintf
               "thread %d op %d on key %d returned %b, single-writer model says %b; log: %s"
               d i k got want (log_prefix logs.(d)))
      | None -> (
          match Instr.run_sequential (fun () -> S.check_invariants t) with
          | Error m -> Error (Printf.sprintf "invariants: %s" m)
          | Ok () ->
              let final = Instr.run_sequential (fun () -> S.to_list t) in
              let expected = replay_final logs in
              if final <> expected then
                Error
                  (Printf.sprintf "final set {%s} diverges from replay {%s}"
                     (String.concat "," (List.map string_of_int final))
                     (String.concat "," (List.map string_of_int expected)))
              else Ok ())
    in
    (List.init threads (fun d -> body d), oracle)
  in
  with_recorder @@ fun () ->
  (* Every divergence below — deadlock, livelock, exception, result
     mismatch, invariants, final-set replay — carries the timeline of the
     operations that completed before it. *)
  let fail fmt = Printf.ksprintf (fun m -> Error (m ^ "\n" ^ Obs.Recorder.dump ~last:20 ())) fmt in
  let schedule = ref [] in
  let budget = 100_000 in
  let outcome =
    let bodies, oracle = make_instance () in
    match
      let ex = Exec.create bodies in
      let driver = Rng.create ~seed:(Int64.of_int ((seed * 7919) + 13)) () in
      let rec drive steps =
        if Exec.finished ex then Ok ()
        else if Exec.deadlocked ex then
          fail "deadlock: every unfinished thread is parked on a held lock"
        else if steps > budget then fail "step budget exhausted (livelock?)"
        else begin
          let runnable = Exec.runnable_threads ex in
          let c = List.nth runnable (Rng.int driver (List.length runnable)) in
          schedule := c :: !schedule;
          Exec.step ex c;
          drive (steps + 1)
        end
      in
      try drive 0
      with e -> fail "exception during execution: %s" (Printexc.to_string e)
    with
    | Error e -> Error e
    | Ok () -> ( match oracle () with Ok () -> Ok () | Error m -> fail "%s" m)
  in
  match outcome with
  | Ok () -> Ok ()
  | Error e ->
      (* The divergence is deterministic in (plan, schedule), so shrink it
         before reporting: the oracle rides along as the scenario's
         invariant check, making every divergence class an Explore
         failure the shrinker knows how to preserve. *)
      let scenario =
        {
          Vbl_sched.Explore.make =
            (fun () ->
              let bodies, oracle = make_instance () in
              {
                Vbl_sched.Explore.bodies;
                history = (fun () -> Vbl_spec.History.of_list []);
                invariants = oracle;
              });
        }
      in
      let r = Vbl_sched.Shrink.shrink_schedule ~max_steps:budget scenario (List.rev !schedule) in
      Error
        (Printf.sprintf "%s\nshrunk schedule (%d -> %d steps, %d replays): [%s]" e
           (List.length r.Vbl_sched.Shrink.original)
           (List.length r.Vbl_sched.Shrink.shrunk)
           r.Vbl_sched.Shrink.attempts
           (String.concat "; " (List.map string_of_int r.Vbl_sched.Shrink.shrunk)))

let instr_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let instr_clean_case impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  Alcotest.test_case (S.name ^ ": randomized-scheduler differential") `Quick (fun () ->
      List.iter
        (fun seed ->
          match
            instr_run impl ~threads:3 ~ops_per_thread:10 ~key_range:9 ~update_percent:70
              ~seed
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: seed %d: %s" S.name seed e)
        instr_seeds)

(* A mutant is caught when at least one seed diverges: the randomized
   differential oracle is the cheap cousin of the DPOR mutation suite in
   test_analysis, so it must reproduce at least the deterministic
   catches.  The leaky-lock mutant deadlocks under any schedule that
   makes a second update touch the leaked lock; the no-logical-delete
   mutant loses concurrent updates visible as a replay divergence. *)
let instr_mutant_case name impl =
  Alcotest.test_case (name ^ ": mutant caught by randomized differential") `Quick
    (fun () ->
      let caught =
        List.exists
          (fun seed ->
            match
              instr_run impl ~threads:3 ~ops_per_thread:10 ~key_range:9
                ~update_percent:70 ~seed
            with
            | Ok () -> false
            | Error _ -> true)
          instr_seeds
      in
      if not caught then
        Alcotest.failf "%s survived all %d random schedules" name (List.length instr_seeds))

(* The divergence message itself must carry the flight-recorder timeline
   — the contract every failure path above relies on.  A mutant forces a
   real divergence, so this checks the wiring end to end. *)
let mutant_dump_case =
  Alcotest.test_case "mutant divergence carries the flight-recorder timeline" `Quick
    (fun () ->
      let errors =
        List.filter_map
          (fun seed ->
            match
              instr_run
                (module Vbl_analysis.Mutants.Vbl_no_logical_delete : Vbl_lists.Set_intf.S)
                ~threads:3 ~ops_per_thread:10 ~key_range:9 ~update_percent:70 ~seed
            with
            | Ok () -> None
            | Error e -> Some e)
          instr_seeds
      in
      match errors with
      | [] -> Alcotest.fail "vbl-no-logical-delete survived every seed; nothing to check"
      | e :: _ ->
          if not (contains_sub e "flight recorder") then
            Alcotest.failf "divergence message lacks the timeline:\n%s" e;
          if not (contains_sub e "shrunk schedule") then
            Alcotest.failf "divergence message lacks the shrunk counterexample:\n%s" e)

(* ------------------------------------------------------------------ *)
(* Mode 4: range queries vs sequential replay                          *)
(* ------------------------------------------------------------------ *)

(* Deterministic range differential: apply the same random updates to an
   implementation and to a Seq_list replica, comparing a random window's
   range_query after every batch.  Single-domain, so the derived
   double-collect must agree with the replica exactly — this pins the
   inclusive-bounds contract across every family. *)
let range_replay_case impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  Alcotest.test_case (S.name ^ ": range_query matches sequential replay") `Quick
    (fun () ->
      let rng = Rng.create ~seed:2024L () in
      let t = S.create () in
      let replica = Seq.create () in
      for round = 0 to 149 do
        for _ = 1 to 16 do
          let k = 1 + Rng.int rng 64 in
          if Rng.bool rng then begin
            let got = S.insert t k and want = Seq.insert replica k in
            if got <> want then
              Alcotest.failf "%s: round %d: insert %d diverges" S.name round k
          end
          else begin
            let got = S.remove t k and want = Seq.remove replica k in
            if got <> want then
              Alcotest.failf "%s: round %d: remove %d diverges" S.name round k
          end
        done;
        let lo = 1 + Rng.int rng 64 in
        let hi = lo + Rng.int rng 32 - 8 (* sometimes inverted *) in
        let got = S.range_query t lo hi in
        let want = Seq.range_query replica lo hi in
        if got <> want then
          Alcotest.failf "%s: round %d: range [%d,%d] = {%s}, replay says {%s}" S.name
            round lo hi
            (String.concat "," (List.map string_of_int got))
            (String.concat "," (List.map string_of_int want))
      done;
      Alcotest.(check int)
        "approx_size agrees at rest" (List.length (S.to_list t)) (S.approx_size t))

(* Concurrent range smoke under real parallelism: a reader domain runs
   range queries while writers churn.  Snapshot atomicity is the DPOR
   range scenarios' business; here each snapshot must merely be
   well-formed — strictly ascending, deduplicated and inside the asked
   window — i.e. the traversal never tears. *)
let range_stress_case impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  Alcotest.test_case (S.name ^ ": concurrent range snapshots well-formed") `Quick
    (fun () ->
      let t = S.create () in
      let writers = 4 and key_range = 64 in
      let stop = Atomic.make false in
      let bad = Atomic.make None in
      let reader () =
        let rng = Rng.create ~seed:99L () in
        while not (Atomic.get stop) do
          let lo = 1 + Rng.int rng key_range in
          let hi = lo + Rng.int rng 16 in
          let snap = S.range_query t lo hi in
          let rec ascending = function
            | a :: (b :: _ as rest) -> a < b && ascending rest
            | [ _ ] | [] -> true
          in
          if not (ascending snap && List.for_all (fun v -> lo <= v && v <= hi) snap)
          then ignore (Atomic.compare_and_set bad None (Some (lo, hi, snap)))
        done
      in
      let writer d () =
        let rng = Rng.stream ~seed:31337L ~index:d in
        for _ = 1 to 20_000 do
          let k = 1 + Rng.int rng key_range in
          if Rng.bool rng then ignore (S.insert t k) else ignore (S.remove t k)
        done
      in
      let rd = Domain.spawn reader in
      List.iter Domain.join (List.init writers (fun d -> Domain.spawn (writer d)));
      Atomic.set stop true;
      Domain.join rd;
      (match Atomic.get bad with
      | None -> ()
      | Some (lo, hi, snap) ->
          Alcotest.failf "%s: torn range snapshot [%d,%d]: {%s}" S.name lo hi
            (String.concat "," (List.map string_of_int snap)));
      match S.check_invariants t with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: invariants after range stress: %s" S.name m)

(* ------------------------------------------------------------------ *)
(* Mode 3: batched vs one-at-a-time application                        *)
(* ------------------------------------------------------------------ *)

(* Single-domain, so every result is deterministic: an operation's result
   depends only on the same-key prefix, and apply_batch's shard grouping
   preserves per-key order, so batched results must equal a left-to-right
   Seq_list replay op for op. *)
let batch_case (impl : (module Vbl_shard.Sharded_set.S)) =
  let module S = (val impl) in
  Alcotest.test_case (S.name ^ ": apply_batch matches sequential replay") `Quick
    (fun () ->
      with_recorder @@ fun () ->
      let rng = Rng.create ~seed:4242L () in
      let key_range = 512 in
      let t = S.create () in
      let replica = Seq.create () in
      let batch = 64 in
      for round = 0 to 49 do
        let ops =
          Array.init batch (fun _ ->
              let k = 1 + Rng.int rng key_range in
              match Rng.int rng 3 with
              | 0 -> Vbl_shard.Sharded_set.Insert k
              | 1 -> Vbl_shard.Sharded_set.Remove k
              | _ -> Vbl_shard.Sharded_set.Contains k)
        in
        let t0 = Obs.Contention.now_ns () in
        let got = S.apply_batch t ops in
        let t1 = Obs.Contention.now_ns () in
        (* One timestamp pair per batch: per-op timing inside apply_batch
           is the backend's business, not the oracle's. *)
        Array.iteri
          (fun i op ->
            let kind, key =
              match op with
              | Vbl_shard.Sharded_set.Insert k -> (Obs.Recorder.Insert, k)
              | Vbl_shard.Sharded_set.Remove k -> (Obs.Recorder.Remove, k)
              | Vbl_shard.Sharded_set.Contains k -> (Obs.Recorder.Contains, k)
            in
            Obs.Recorder.record ~thread:0 ~kind ~key ~shard:(-1) ~ok:got.(i) ~restarts:0
              ~t0_ns:t0 ~t1_ns:t1)
          ops;
        Array.iteri
          (fun i op ->
            let want =
              match op with
              | Vbl_shard.Sharded_set.Insert k -> Seq.insert replica k
              | Vbl_shard.Sharded_set.Remove k -> Seq.remove replica k
              | Vbl_shard.Sharded_set.Contains k -> Seq.contains replica k
            in
            if got.(i) <> want then
              failf_dump "%s: round %d op %d: batch says %b, replay says %b" S.name round
                i got.(i) want)
          ops
      done;
      Alcotest.(check (list int))
        "final contents match replica" (Seq.to_list replica) (S.to_list t);
      (match S.check_invariants t with
      | Ok () -> ()
      | Error m -> failf_dump "%s: invariants: %s" S.name m);
      Alcotest.(check int)
        "striped size agrees" (List.length (S.to_list t)) (S.size t))

(* ------------------------------------------------------------------ *)

let () =
  let impl_cases =
    List.map real_case
      (Vbl_lists.Registry.concurrent @ Vbl_shard.Registry.all
      @ Vbl_skiplists.Registry.all @ Vbl_trees.Registry.concurrent)
  in
  let churn_cases =
    List.map churn_case
      [
        (module Vbl_lists.Registry.Lazy_reclaim : Vbl_lists.Set_intf.S);
        (module Vbl_lists.Registry.Harris_michael_reclaim);
        (module Vbl_lists.Registry.Vbl_reclaim);
        (module Vbl_shard.Registry.Vbl_sharded_8_reclaim);
      ]
  in
  let clean_instr =
    List.map instr_clean_case
      [
        (module Vbl_sched.Drive.Vbl_i : Vbl_lists.Set_intf.S);
        (module Vbl_sched.Drive.Lazy_i);
        (module Vbl_sched.Drive.Hm_tagged_i);
        (module Vbl_sched.Drive.Coarse_i);
        (module Vbl_shard.Registry.Vbl_sharded_4_i);
        (module Vbl_skiplists.Registry.Vbl_skip_i);
        (module Vbl_trees.Registry.Vbl_bst_i);
        (module Vbl_trees.Registry.Lazy_bst_i);
      ]
  in
  let mutants =
    [
      instr_mutant_case "vbl-leaky-lock"
        (module Vbl_analysis.Mutants.Vbl_leaky_lock : Vbl_lists.Set_intf.S);
      instr_mutant_case "vbl-no-logical-delete"
        (module Vbl_analysis.Mutants.Vbl_no_logical_delete);
      instr_mutant_case "bst-no-version-recheck"
        (module Vbl_analysis.Mutants.Bst_no_version_recheck);
      mutant_dump_case;
    ]
  in
  let range_cases =
    List.map range_replay_case
      (Vbl_lists.Registry.concurrent @ Vbl_skiplists.Registry.all
      @ Vbl_trees.Registry.concurrent @ Vbl_shard.Registry.all)
    @ List.map range_stress_case
        [
          (module Vbl_lists.Registry.Vbl : Vbl_lists.Set_intf.S);
          (module Vbl_skiplists.Registry.Vbl_skip);
          (module Vbl_skiplists.Registry.Lockfree_skip);
          (module Vbl_trees.Registry.Vbl_bst_impl);
          (module Vbl_trees.Registry.Lockfree_bst_impl);
        ]
  in
  Alcotest.run "differential"
    [
      ("real-domains", impl_cases);
      ("real-domains-churn", churn_cases);
      ("instr-random-scheduler", clean_instr);
      ("instr-mutants", mutants);
      ("batch", List.map batch_case Vbl_shard.Registry.batched);
      ("range", range_cases);
    ]
