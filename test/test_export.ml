(* Exporter tests.

   The Chrome trace exporter is checked against byte-exact golden
   strings (timestamps are printed with fixed precision for exactly this
   reason).  The OpenMetrics exporter is checked by round-tripping
   through the in-tree parser: labels (including escaping), histogram
   bucket series, and counter monotonicity across successive
   expositions.  The validator must also reject structurally broken
   expositions, since CI trusts it to gate exporter output. *)

module Obs = Vbl_obs

let entry ~thread ~kind ~key ~shard ~ok ~restarts ~t0 ~t1 =
  { Obs.Recorder.thread; kind; key; shard; ok; restarts; t0_ns = t0; t1_ns = t1 }

(* ------------------------------------------------------------------ *)
(* Chrome trace golden files                                           *)
(* ------------------------------------------------------------------ *)

let golden_two_entries =
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
   {\"name\":\"insert\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":2.500,\"args\":{\"key\":5,\"shard\":-1,\"ok\":1,\"restarts\":0}},\n\
   {\"name\":\"contains\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1.000,\"dur\":0.100,\"args\":{\"key\":9,\"shard\":2,\"ok\":0,\"restarts\":1}}\n\
   ]}\n"

let test_chrome_golden () =
  let entries =
    [
      entry ~thread:0 ~kind:Obs.Recorder.Insert ~key:5 ~shard:(-1) ~ok:true ~restarts:0
        ~t0:1_000 ~t1:3_500;
      entry ~thread:1 ~kind:Obs.Recorder.Contains ~key:9 ~shard:2 ~ok:false ~restarts:1
        ~t0:2_000 ~t1:2_100;
    ]
  in
  Alcotest.(check string)
    "two-entry trace is byte-exact" golden_two_entries
    (Obs.Export.chrome_trace_of_entries entries)

let test_chrome_empty () =
  Alcotest.(check string)
    "empty trace still a valid document"
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
    (Obs.Export.chrome_trace_of_entries [])

let test_chrome_sub_ns_duration () =
  (* A zero-length span still gets a positive (1 ns) duration so the
     viewer renders it. *)
  let s =
    Obs.Export.chrome_trace_of_entries
      [
        entry ~thread:0 ~kind:Obs.Recorder.Remove ~key:1 ~shard:0 ~ok:true ~restarts:0
          ~t0:500 ~t1:500;
      ]
  in
  Alcotest.(check string)
    "1 ns floor" s
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
     {\"name\":\"remove\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":0.001,\"args\":{\"key\":1,\"shard\":0,\"ok\":1,\"restarts\":0}}\n\
     ]}\n"

(* ------------------------------------------------------------------ *)
(* OpenMetrics round-trip                                              *)
(* ------------------------------------------------------------------ *)

let parse_ok text =
  match Obs.Export.parse text with
  | Ok samples -> samples
  | Error m -> Alcotest.failf "parse failed: %s\n%s" m text

let find samples name labels =
  match
    List.find_opt
      (fun (s : Obs.Export.sample) -> s.name = name && s.labels = labels)
      samples
  with
  | Some s -> s.Obs.Export.value
  | None ->
      Alcotest.failf "no sample %s{%s}" name
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let test_labels_roundtrip () =
  let nasty = "a\\b\"c\nd" in
  let text =
    Obs.Export.render
      [
        Obs.Export.Counter
          {
            name = "vbl_test_ops";
            help = "with a \"nasty\" label";
            samples = [ ([ ("path", nasty); ("kind", "x") ], 7.) ];
          };
        Obs.Export.Gauge
          { name = "vbl_test_level"; help = "plain gauge"; samples = [ ([], 1.5) ] };
      ]
  in
  let samples = parse_ok text in
  Alcotest.(check (float 0.))
    "escaped label value round-trips" 7.
    (find samples "vbl_test_ops_total" [ ("path", nasty); ("kind", "x") ]);
  Alcotest.(check (float 0.)) "gauge value" 1.5 (find samples "vbl_test_level" []);
  match Obs.Export.validate text with
  | Ok n -> Alcotest.(check int) "validator counts both samples" 2 n
  | Error m -> Alcotest.failf "validate rejected the exposition: %s" m

let test_histogram_roundtrip () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record h) [ 100; 200; 300_000 ];
  let labels = [ ("site", "lock_next_at") ] in
  let text =
    Obs.Export.render
      [
        Obs.Export.Histogram_family
          { name = "vbl_test_wait_ns"; help = "wait"; series = [ (labels, h) ] };
      ]
  in
  let samples = parse_ok text in
  let buckets =
    List.filter (fun (s : Obs.Export.sample) -> s.name = "vbl_test_wait_ns_bucket") samples
  in
  Alcotest.(check bool) "has buckets" true (buckets <> []);
  (* Cumulative and non-decreasing, ending at le="+Inf" = count. *)
  let prev = ref 0. in
  List.iter
    (fun (s : Obs.Export.sample) ->
      Alcotest.(check bool) "bucket cumulative" true (s.value >= !prev);
      prev := s.value)
    buckets;
  let last = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check (list (pair string string)))
    "last bucket is +Inf"
    (labels @ [ ("le", "+Inf") ])
    last.Obs.Export.labels;
  Alcotest.(check (float 0.)) "+Inf bucket = n" 3. last.Obs.Export.value;
  Alcotest.(check (float 0.)) "sum" 300_300. (find samples "vbl_test_wait_ns_sum" labels);
  Alcotest.(check (float 0.)) "count" 3. (find samples "vbl_test_wait_ns_count" labels);
  match Obs.Export.validate text with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "validate rejected the histogram exposition: %s" m

let test_counter_monotonic_across_renders () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr Obs.Metrics.Restarts;
  Obs.Metrics.incr Obs.Metrics.Restarts;
  let read () =
    find
      (parse_ok (Obs.Export.render (Obs.Export.counter_families (Obs.Metrics.snapshot ()))))
      "vbl_restarts_total" []
  in
  let v1 = read () in
  Obs.Metrics.incr Obs.Metrics.Restarts;
  let v2 = read () in
  Alcotest.(check (float 0.)) "first exposition" 2. v1;
  Alcotest.(check bool) "counter never decreases across expositions" true (v2 >= v1);
  Alcotest.(check (float 0.)) "second exposition" 3. v2

let test_openmetrics_of_run_validates () =
  match Obs.Export.validate (Obs.Export.openmetrics_of_run ()) with
  | Ok n -> Alcotest.(check bool) "non-empty exposition" true (n > 0)
  | Error m -> Alcotest.failf "openmetrics_of_run invalid: %s" m

(* ------------------------------------------------------------------ *)
(* Validator rejections                                                *)
(* ------------------------------------------------------------------ *)

let expect_error name text =
  match Obs.Export.validate text with
  | Ok _ -> Alcotest.failf "%s: validator accepted a broken exposition" name
  | Error _ -> ()

let test_validator_rejects () =
  expect_error "missing EOF" "# TYPE vbl_x counter\nvbl_x_total 1\n";
  expect_error "negative counter" "# TYPE vbl_x counter\nvbl_x_total -1\n# EOF\n";
  expect_error "non-cumulative buckets"
    "# TYPE x histogram\n\
     x_bucket{le=\"8\"} 5\n\
     x_bucket{le=\"+Inf\"} 3\n\
     x_sum 1\n\
     x_count 3\n\
     # EOF\n";
  expect_error "count disagrees with +Inf bucket"
    "# TYPE x histogram\n\
     x_bucket{le=\"8\"} 1\n\
     x_bucket{le=\"+Inf\"} 3\n\
     x_sum 1\n\
     x_count 4\n\
     # EOF\n";
  expect_error "bucket series not ending at +Inf"
    "# TYPE x histogram\nx_bucket{le=\"8\"} 1\nx_sum 1\nx_count 1\n# EOF\n"

let () =
  Alcotest.run "export"
    [
      ( "chrome-trace",
        [
          Alcotest.test_case "golden two-entry trace" `Quick test_chrome_golden;
          Alcotest.test_case "golden empty trace" `Quick test_chrome_empty;
          Alcotest.test_case "zero-length span gets 1 ns" `Quick test_chrome_sub_ns_duration;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "label escaping round-trips" `Quick test_labels_roundtrip;
          Alcotest.test_case "histogram buckets round-trip" `Quick test_histogram_roundtrip;
          Alcotest.test_case "counters monotone across renders" `Quick
            test_counter_monotonic_across_renders;
          Alcotest.test_case "openmetrics_of_run validates" `Quick
            test_openmetrics_of_run_validates;
          Alcotest.test_case "validator rejects broken input" `Quick test_validator_rejects;
        ] );
    ]
