compare_bench diffs two BENCH_*.json snapshots and its exit code gates CI:
0 = parity, 1 = regression beyond the threshold, 2 = point-set mismatch
only, 64 = usage error.  Crafted fixtures cover each path.

A baseline with two points:

  $ cat > old.json <<'EOF'
  > {"engine": "real", "unit": "ops/s", "points": [
  >   {"algorithm": "vbl", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 1000000.0, "stddev": 1000.0}},
  >   {"algorithm": "vbl-sharded-8", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 4000000.0, "stddev": 2000.0}}
  > ]}
  > EOF

Exit 0: same point set, new means within the 10% threshold (one slightly
up, one slightly down):

  $ cat > new_ok.json <<'EOF'
  > {"engine": "real", "unit": "ops/s", "points": [
  >   {"algorithm": "vbl", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 1050000.0, "stddev": 1000.0}},
  >   {"algorithm": "vbl-sharded-8", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 3800000.0, "stddev": 2000.0}}
  > ]}
  > EOF
  $ vbl-compare-bench old.json new_ok.json
  algorithm                threads upd%   range       old.json    new_ok.json     delta
  vbl                            2   20    2000        1000000        1050000     +5.0%
  vbl-sharded-8                  2   20    2000        4000000        3800000     -5.0%
  
  2 point(s) compared, 0 regression(s) beyond 10%; 0 only in new_ok.json, 0 only in old.json


Exit 1: the sharded point dropped 50%, far past the threshold:

  $ cat > new_regressed.json <<'EOF'
  > {"engine": "real", "unit": "ops/s", "points": [
  >   {"algorithm": "vbl", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 1050000.0, "stddev": 1000.0}},
  >   {"algorithm": "vbl-sharded-8", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 2000000.0, "stddev": 2000.0}}
  > ]}
  > EOF
  $ vbl-compare-bench old.json new_regressed.json
  algorithm                threads upd%   range       old.json new_regressed.json     delta
  vbl                            2   20    2000        1000000        1050000     +5.0%
  vbl-sharded-8                  2   20    2000        4000000        2000000    -50.0%  << REGRESSION
  
  2 point(s) compared, 1 regression(s) beyond 10%; 0 only in new_regressed.json, 0 only in old.json
  [1]


A looser threshold turns the same pair back into parity:

  $ vbl-compare-bench old.json new_regressed.json --threshold 60
  algorithm                threads upd%   range       old.json new_regressed.json     delta
  vbl                            2   20    2000        1000000        1050000     +5.0%
  vbl-sharded-8                  2   20    2000        4000000        2000000    -50.0%
  
  2 point(s) compared, 0 regression(s) beyond 60%; 0 only in new_regressed.json, 0 only in old.json


Exit 2: disjoint workload cells (a different thread count) — no comparable
point regressed, but the snapshots do not cover the same matrix:

  $ cat > new_mismatch.json <<'EOF'
  > {"engine": "real", "unit": "ops/s", "points": [
  >   {"algorithm": "vbl", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 1000000.0, "stddev": 1000.0}},
  >   {"algorithm": "vbl-sharded-8", "threads": 4, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 4000000.0, "stddev": 2000.0}}
  > ]}
  > EOF
  $ vbl-compare-bench old.json new_mismatch.json
  warning: point sets differ — the snapshots do not cover the same workload matrix
  algorithm                threads upd%   range       old.json new_mismatch.json     delta
  vbl                            2   20    2000        1000000        1000000     +0.0%
  
  1 point(s) compared, 0 regression(s) beyond 10%; 1 only in new_mismatch.json, 1 only in old.json
  [2]


A regression wins over a simultaneous point-set mismatch (1, not 2), since
it is the stronger signal for CI:

  $ cat > new_both.json <<'EOF'
  > {"engine": "real", "unit": "ops/s", "points": [
  >   {"algorithm": "vbl", "threads": 2, "update_percent": 20, "key_range": 2000,
  >    "throughput": {"mean": 100000.0, "stddev": 1000.0}}
  > ]}
  > EOF
  $ vbl-compare-bench old.json new_both.json
  warning: point sets differ — the snapshots do not cover the same workload matrix
  algorithm                threads upd%   range       old.json  new_both.json     delta
  vbl                            2   20    2000        1000000         100000    -90.0%  << REGRESSION
  
  1 point(s) compared, 1 regression(s) beyond 10%; 0 only in new_both.json, 1 only in old.json
  [1]


A generated snapshot (the real schema, written by the benchmark tools)
round-trips through the hand-rolled parser — compared against itself it
is exact parity, exit 0:

  $ vbl-synchrobench --engine sim -a vbl --shards 1,4 -t 2 -u 20 -r 64 -n 2 --horizon 20000 --metrics-json gen.json --csv
  vbl,2,20,64,simulated-multicore,39.8750,2.0153
  vbl-sharded-4,2,20,64,simulated-multicore,74.7250,0.5303
  $ vbl-compare-bench gen.json gen.json > roundtrip.out
  $ tail -n 1 roundtrip.out
  2 point(s) compared, 0 regression(s) beyond 10%; 0 only in gen.json, 0 only in gen.json

Exit 64: usage errors:

  $ vbl-compare-bench old.json
  usage: compare_bench OLD.json NEW.json [--threshold PCT]
  [64]
