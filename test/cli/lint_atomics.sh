#!/usr/bin/env bash
# Source lint: algorithm libraries must go through the memory-backend
# functor argument (M.get / M.cas / M.lock ...), never through raw
# Atomic.* or Mutex.* — otherwise the instrumented backend, and with it
# the whole schedule/analysis framework, silently loses sight of those
# accesses.  Run via `dune build @analysis` (the rule passes the tree
# root) or directly: test/cli/lint_atomics.sh <repo-root>.
set -u

root="${1:-.}"
status=0

for dir in lib/lists lib/skiplists lib/trees; do
  [ -d "$root/$dir" ] || continue
  # \b guards against identifiers merely ending in the module names.
  hits=$(grep -nE '\b(Atomic|Mutex)\.' "$root/$dir"/*.ml 2>/dev/null)
  if [ -n "$hits" ]; then
    echo "lint_atomics: raw Atomic./Mutex. use in $dir:" >&2
    echo "$hits" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint_atomics: clean (lib/lists lib/skiplists lib/trees)"
fi
exit "$status"
