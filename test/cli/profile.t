A profiled run prints the wait-time-by-site attribution table and the
flight-recorder tail, and --export writes exporter files that the
in-tree validator accepts (sample/event counts vary run to run, so only
exit codes are asserted for those):

  $ vbl-synchrobench -a vbl -t 2 -u 50 -r 64 -d 0.05 -w 0.01 -n 1 --profile --export out > run.txt
  $ grep -c "^site " run.txt
  1
  $ grep -o "lock_next_at" run.txt | head -n 1
  lock_next_at
  $ grep -o "flight recorder" run.txt | head -n 1
  flight recorder
  $ vbl-omcheck out.metrics.txt > /dev/null
  $ vbl-omcheck --chrome out.trace.json > /dev/null

An invalid OpenMetrics file is rejected with a nonzero exit:

  $ printf 'vbl_x_total -1\n# EOF\n' > bad.txt
  $ vbl-omcheck bad.txt
  bad.txt: INVALID: counter vbl_x_total has non-finite or negative value -1
  [1]

--trace-json exports the instrumented-schedule timeline of the short
deterministic simulated run:

  $ vbl-synchrobench -a vbl -t 2 --engine sim --horizon 500 -n 1 --trace-json sched.json > /dev/null
  $ vbl-omcheck --chrome sched.json > /dev/null

Flag validation:

  $ vbl-synchrobench --export x
  --export requires --profile (nothing to export otherwise)
  [2]
  $ vbl-synchrobench --engine sim --profile
  --profile needs the wall clock; use --engine real
  [2]
  $ vbl-synchrobench --profile --matrix
  --profile attributes one measured point; drop --matrix
  [2]
