The Figure 2 demonstration is fully deterministic:

  $ vbl-schedules fig2
  === Figure 2: a correct schedule the Lazy Linked List rejects ===
  
  Initial list {X1=1}; insert(1) is thread 0, insert(2) is thread 1.
  The schedule lets insert(1) read X1 and return false while insert(2)
  holds X1 between creating X2 and linking it.
  
  Script (in the paper's step vocabulary):
     1. thread 0: R(h)
     2. thread 1: R(h)
     3. thread 1: R(X1)
     4. thread 1: new(X2)
     5. thread 0: R(X1)
     6. thread 0: return false
     7. thread 1: W(X1)
     8. thread 1: return true
  
  Correct per Definition 1 (checked on sequential LL): true
  Final abstract list: {1, 2}
  
  Driving the schedule against each implementation:
    vbl                      ACCEPTS  (realised in 16 steps)
    lazy                     rejects at script step 6: thread 0 blocked on lock X1.lock
  
So is Figure 3:

  $ vbl-schedules fig3 | tail -n 8
  Driving the schedule against the Harris-Michael variants:
    harris-michael (AMR)     rejects at script step 19: thread 3: step W(X1) executed but did not take effect
    harris-michael (RTTI)    rejects at script step 19: thread 3: step W(X1) executed but did not take effect
  
  The same four-operation scenario under VBL (remove(2) unlinks X2
  immediately, so phase B interleaves freely with no restarts):
    vbl                      ACCEPTS  (realised in 54 steps)
  
And the remove+reinsert scenario behind the value-aware try-lock:

  $ vbl-schedules aba | grep steps
    vbl               15 steps  (remove returned true)
    vbl-versioned     25 steps  (remove returned true)
    vbl-postlock      17 steps  (remove returned true)
