The AST concurrency-discipline linter, driven against a synthetic tree.

A clean tree — every algorithm directory present (lib/reclaim included,
linted with the backend subset L3..L7), disciplined code only:

  $ mkdir -p proj/lib/lists proj/lib/skiplists proj/lib/trees proj/lib/shard proj/lib/reclaim
  $ cat > proj/lib/lists/good.ml <<'EOF'
  > (* mentions Atomic.get and Mutex.lock in a comment, which is fine *)
  > let doc = "even strings may say Atomic.set"
  > let add a b = a + b
  > EOF
  $ vbl-lint proj
  lint: clean (lib/lists lib/skiplists lib/trees lib/shard lib/reclaim)

Backend code may use raw atomics and mutable fields — L1 does not apply
under lib/reclaim:

  $ cat > proj/lib/reclaim/backend.ml <<'EOF'
  > type slot = { mutable free : int list }
  > let c = Atomic.make 0
  > EOF
  $ vbl-lint proj
  lint: clean (lib/lists lib/skiplists lib/trees lib/shard lib/reclaim)

A seeded violation is reported with its file:line:col span and exit 1:

  $ cat > proj/lib/skiplists/bad.ml <<'EOF'
  > let c = Atomic.make 0
  > EOF
  $ vbl-lint proj
  lib/skiplists/bad.ml:1:8: [L1] raw Atomic.make access outside the memory backend (use the M.* functor argument)
  lint: 1 finding(s)
  [1]

Rule selection drops findings outside the requested subset:

  $ vbl-lint --rule L2,L3 proj
  lint: clean (lib/lists lib/skiplists lib/trees lib/shard lib/reclaim)

The reclamation rules: an epoch-bracket leak (L5), a use-after-retire
(L6) and a publish-before-init (L7) in one reclaiming module, selected
by their lowercase names:

  $ cat > proj/lib/lists/reclaimer.ml <<'EOF'
  > let leaky t cond =
  >   let h = M.op_enter t.pool in
  >   if cond then begin M.op_exit t.pool h; true end
  >   else false
  > let unlock_after_retire t prev curr =
  >   let h = M.op_enter t.pool in
  >   M.set (next_cell prev) (M.get (next_cell curr));
  >   M.retire t.pool curr;
  >   M.unlock (node_lock curr);
  >   M.op_exit t.pool h
  > let publish_then_init t v =
  >   let h = M.op_enter t.pool in
  >   let x = M.recycle t.pool in
  >   M.set (next_cell t.head) x;
  >   (match x with Node n -> M.set n.value v | Tail -> ());
  >   M.op_exit t.pool h
  > EOF
  $ vbl-lint --rule l5,l6,l7 proj
  lib/lists/reclaimer.ml:4:7: [L5] exits with 1 open epoch bracket(s); close the bracket on every path
  lib/lists/reclaimer.ml:9:22: [L6] use of curr after M.retire (the node may already be recycled)
  lib/lists/reclaimer.ml:15:26: [L7] field 'value' of x written after the node was published by a store/CAS (initialize every cell before publishing)
  lint: 3 finding(s)
  [1]

SARIF output (what GitHub code scanning ingests) carries the same
findings with 1-based columns:

  $ rm proj/lib/lists/reclaimer.ml
  $ vbl-lint --format sarif proj
  {"$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"vbl-lint","informationUri":"https://example.invalid/vbl-lint","rules":[{"id":"L1","shortDescription":{"text":"backend confinement: shared accesses only through the memory-backend functor"}},{"id":"L2","shortDescription":{"text":"named-guard discipline: Naming.* only under an [if M.named] guard"}},{"id":"L3","shortDescription":{"text":"static lock pairing: every acquisition released on all syntactic exits"}},{"id":"L4","shortDescription":{"text":"hot-path allocation: no closures, tuples, records or staged applications under [@hot]"}},{"id":"L5","shortDescription":{"text":"epoch-bracket discipline: in reclaiming modules, shared cells are touched only from a balanced op_enter/op_exit bracket"}},{"id":"L6","shortDescription":{"text":"retire/use discipline: a retired node is poisoned (no later use, unlock or re-retire) and retire follows the unlinking store/CAS"}},{"id":"L7","shortDescription":{"text":"publish-before-reachable: every cell of a fresh or recycled node is written before the store/CAS (or version bump) that publishes it"}}]}},"results":[{"ruleId":"L1","level":"error","message":{"text":"raw Atomic.make access outside the memory backend (use the M.* functor argument)"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"lib/skiplists/bad.ml"},"region":{"startLine":1,"startColumn":9}}}]}]}]}
  [1]

An unknown rule name is a usage error:

  $ vbl-lint --rule L9 proj
  lint: unknown rule: L9 (expected L1..L7)
  [2]

JSON output carries the same findings, machine-readably:

  $ vbl-lint --format json proj
  {"target": "lib/lists lib/skiplists lib/trees lib/shard lib/reclaim", "count": 1, "findings": [{"rule":"L1","file":"lib/skiplists/bad.ml","line":1,"col":8,"message":"raw Atomic.make access outside the memory backend (use the M.* functor argument)"}]}
  [1]

A missing algorithm directory is an error, never a silent skip:

  $ rm -r proj/lib/trees
  $ vbl-lint proj
  lint: missing directories under proj: lib/trees
  [2]
