The AST concurrency-discipline linter, driven against a synthetic tree.

A clean tree — every algorithm directory present, disciplined code only:

  $ mkdir -p proj/lib/lists proj/lib/skiplists proj/lib/trees proj/lib/shard
  $ cat > proj/lib/lists/good.ml <<'EOF'
  > (* mentions Atomic.get and Mutex.lock in a comment, which is fine *)
  > let doc = "even strings may say Atomic.set"
  > let add a b = a + b
  > EOF
  $ vbl-lint proj
  lint: clean (lib/lists lib/skiplists lib/trees lib/shard)

A seeded violation is reported with its file:line:col span and exit 1:

  $ cat > proj/lib/skiplists/bad.ml <<'EOF'
  > let c = Atomic.make 0
  > EOF
  $ vbl-lint proj
  lib/skiplists/bad.ml:1:8: [L1] raw Atomic.make access outside the memory backend (use the M.* functor argument)
  lint: 1 finding(s)
  [1]

Rule selection drops findings outside the requested subset:

  $ vbl-lint --rule L2,L3 proj
  lint: clean (lib/lists lib/skiplists lib/trees lib/shard)

JSON output carries the same findings, machine-readably:

  $ vbl-lint --format json proj
  {"target": "lib/lists lib/skiplists lib/trees lib/shard", "count": 1, "findings": [{"rule":"L1","file":"lib/skiplists/bad.ml","line":1,"col":8,"message":"raw Atomic.make access outside the memory backend (use the M.* functor argument)"}]}
  [1]

A missing algorithm directory is an error, never a silent skip:

  $ rm -r proj/lib/trees
  $ vbl-lint proj
  lint: missing directories under proj: lib/trees
  [2]
