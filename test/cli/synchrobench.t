One simulated data point, deterministic for a fixed seed:

  $ vbl-synchrobench --engine sim -a vbl -t 4 -u 20 -r 64 -n 2 --horizon 20000 --csv
  vbl,4,20,64,simulated-multicore,63.9750,2.6517
