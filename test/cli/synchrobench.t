One simulated data point, deterministic for a fixed seed:

  $ vbl-synchrobench --engine sim -a vbl -t 4 -u 20 -r 64 -n 2 --horizon 20000 --csv
  vbl,4,20,64,simulated-multicore,63.9750,2.6517

The churn preset pins the update rate to 90 and the key range to 256
(the reclamation layer's target workload), visible in the CSV columns:

  $ vbl-synchrobench --engine sim -a vbl-reclaim -t 4 --churn -n 2 --horizon 20000 --csv
  vbl-reclaim,4,90,256,simulated-multicore,15.7715,0.0691

It fixes a single workload cell, so combining it with the sweep is refused:

  $ vbl-synchrobench --churn --matrix
  --churn fixes one workload cell; drop --matrix
  [2]
