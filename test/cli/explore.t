Bounded model checking from the command line (times stripped):

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3
  executions explored : 1286  
  verdict             : all explored executions linearizable

  $ vbl-explore -a sequential --ops "insert 1, insert 2" > /dev/null 2>&1; echo "exit=$?"
  exit=1
