Bounded model checking from the command line (times stripped):

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3, dpor
  executions explored : 22  
  verdict             : all explored executions linearizable

  $ vbl-explore -a sequential --ops "insert 1, insert 2" > /dev/null 2>&1; echo "exit=$?"
  exit=1

The naive DFS explores the same scenario without partial-order reduction
(same verdict, far more executions):

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" --dfs | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3, naive dfs
  executions explored : 1286  
  verdict             : all explored executions linearizable

--analyze attaches the happens-before race detector and lock-discipline
linter; the clean algorithm passes, the seeded mutant is flagged with a
reproducing schedule:

  $ vbl-explore -a vbl --analyze --initial "2" --ops "insert 1, remove 2" | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3, dpor, analysis on
  executions explored : 22  
  verdict             : linearizable, race-free, lock-disciplined

  $ vbl-explore -a vbl-unlocked-unlink --analyze --initial "5" --ops "remove 5, insert 3" > mutant.out 2>&1; echo "exit=$?"
  exit=1
  $ sed 's/([0-9.]*s)//' mutant.out
  exploring vbl-unlocked-unlink: initial {5}, ops [remove(5); insert(3)], preemption bound 3, dpor, analysis on
  executions explored : 2  
  verdict             : FAILURE
  race: unordered plain writes to h.next: thread 0's store is not ordered after thread 1's
  schedule            : [0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 0; 0]
