Bounded model checking from the command line (times stripped):

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3, dpor
  executions explored : 22  
  verdict             : all explored executions linearizable

  $ vbl-explore -a sequential --ops "insert 1, insert 2" > /dev/null 2>&1; echo "exit=$?"
  exit=1

The naive DFS explores the same scenario without partial-order reduction
(same verdict, far more executions):

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" --dfs | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3, naive dfs
  executions explored : 1286  
  verdict             : all explored executions linearizable

--analyze attaches the happens-before race detector and lock-discipline
linter; the clean algorithm passes, the seeded mutant is flagged with a
reproducing schedule:

  $ vbl-explore -a vbl --analyze --initial "2" --ops "insert 1, remove 2" | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], preemption bound 3, dpor, analysis on
  executions explored : 22  
  verdict             : linearizable, race-free, lock-disciplined

  $ vbl-explore -a vbl-unlocked-unlink --analyze --initial "5" --ops "remove 5, insert 3" > mutant.out 2>&1; echo "exit=$?"
  exit=1
  $ sed 's/([0-9.]*s)//' mutant.out
  exploring vbl-unlocked-unlink: initial {5}, ops [remove(5); insert(3)], preemption bound 3, dpor, analysis on
  executions explored : 2  
  verdict             : FAILURE
  race: unordered plain writes to h.next: thread 0's store is not ordered after thread 1's
  schedule            : [0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 0; 0]

--bound selects the schedule bound the systematic strategies search
under: delay bounding charges deviations from the deterministic baseline
scheduler instead of preemptions (its schedule space does not grow with
the thread count), and none lifts the bound entirely.  --stats breaks
out the bound's prunes and the distinct schedules seen:

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" --bound delay:2 --stats | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], bound delay:2, dpor
  executions explored : 13  
  sleep-set blocked   : 0
  backtrack races     : 29
  bound prunes        : 7
  distinct schedules  : 13
  verdict             : all explored executions linearizable

--sct switches to randomized swarm scheduling: per-run weights,
preemption probability and fairness window are drawn from the seed, so
the run count is exactly the requested iterations (collisions show up as
distinct < explored):

  $ vbl-explore -a vbl --initial "2" --ops "insert 1, remove 2" --sct random:42:64 --stats | sed 's/([0-9.]*s)//'
  exploring vbl: initial {2}, ops [insert(1); remove(2)], sct random:42:64
  executions explored : 64  
  sleep-set blocked   : 0
  backtrack races     : 0
  bound prunes        : 0
  distinct schedules  : 52
  verdict             : all explored executions linearizable

--shrink delta-debugs a failing schedule to a locally minimal
counterexample that reproduces the same violation:

  $ vbl-explore -a vbl-unlocked-unlink --analyze --initial "5" --ops "remove 5, insert 3" --shrink > shrunk.out 2>&1; echo "exit=$?"
  exit=1
  $ sed 's/([0-9.]*s)//' shrunk.out | tail -n 3
  shrink              : 22 -> 3 steps (15 replays)
  shrunk schedule     : [0; 0; 1]
  shrunk verdict      : race: unordered plain writes to h.next: thread 0's store is not ordered after thread 1's

Malformed --bound and --sct specs, and contradictory strategy requests,
are rejected with exit 2 before anything runs:

  $ vbl-explore --bound preempt
  explore: invalid --bound "preempt" (expected preempt:N, delay:N, or none)
  [2]
  $ vbl-explore --bound delay:-1
  explore: invalid --bound "delay:-1": the delay budget must be a non-negative integer
  [2]
  $ vbl-explore --sct random:42
  explore: invalid --sct "random:42" (expected random:SEED:ITERS)
  [2]
  $ vbl-explore --sct random:abc:10
  explore: invalid --sct "random:abc:10": need an integer seed and a positive iteration count
  [2]
  $ vbl-explore --sct random:42:64 --dfs
  explore: --sct cannot be combined with --dfs
  [2]
  $ vbl-explore --sct random:42:64 --bound delay:2
  explore: --sct cannot be combined with --bound
  [2]
