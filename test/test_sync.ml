(* Tests for the sync primitives: single-thread semantics plus real
   multi-domain mutual-exclusion checks (domains timeshare even on one
   core, so races surface through preemption). *)

module Backoff = Vbl_sync.Backoff
module Ttas = Vbl_sync.Ttas_lock
module Try_lock = Vbl_sync.Try_lock
module Value_lock = Vbl_sync.Value_lock

let backoff_tests =
  [
    Alcotest.test_case "rejects bad windows" `Quick (fun () ->
        Alcotest.check_raises "zero min"
          (Invalid_argument "Backoff.create: need 0 < min_wait <= max_wait")
          (fun () -> ignore (Backoff.create ~min_wait:0 ()));
        Alcotest.check_raises "min > max"
          (Invalid_argument "Backoff.create: need 0 < min_wait <= max_wait")
          (fun () -> ignore (Backoff.create ~min_wait:10 ~max_wait:5 ())));
    Alcotest.test_case "once and reset do not raise" `Quick (fun () ->
        let b = Backoff.create ~min_wait:1 ~max_wait:8 () in
        for _ = 1 to 10 do
          Backoff.once b
        done;
        Backoff.reset b;
        Backoff.once b);
  ]

let lock_single_thread name (create, try_acquire, acquire, release, is_locked) =
  [
    Alcotest.test_case (name ^ ": starts free") `Quick (fun () ->
        Alcotest.(check bool) "free" false (is_locked (create ())));
    Alcotest.test_case (name ^ ": try_acquire wins when free") `Quick (fun () ->
        let l = create () in
        Alcotest.(check bool) "acquired" true (try_acquire l);
        Alcotest.(check bool) "locked" true (is_locked l));
    Alcotest.test_case (name ^ ": try_acquire fails when held") `Quick (fun () ->
        let l = create () in
        acquire l;
        Alcotest.(check bool) "fails" false (try_acquire l);
        release l;
        Alcotest.(check bool) "free again" false (is_locked l);
        Alcotest.(check bool) "retake" true (try_acquire l));
    Alcotest.test_case (name ^ ": acquire/release cycles") `Quick (fun () ->
        let l = create () in
        for _ = 1 to 100 do
          acquire l;
          release l
        done;
        Alcotest.(check bool) "free" false (is_locked l));
  ]

let ttas_ops =
  (Ttas.create, Ttas.try_acquire, Ttas.acquire, Ttas.release, Ttas.is_locked)

let try_lock_ops =
  (Try_lock.create, Try_lock.try_lock, Try_lock.lock, Try_lock.unlock, Try_lock.is_locked)

(* Mutual exclusion under domains: counter increments under the lock must
   not be lost. *)
let mutual_exclusion name acquire release create =
  Alcotest.test_case (name ^ ": no lost updates across domains") `Slow (fun () ->
      let l = create () in
      let counter = ref 0 in
      let iters = 10_000 and domains = 4 in
      let worker () =
        for _ = 1 to iters do
          acquire l;
          counter := !counter + 1;
          release l
        done
      in
      let ds = List.init domains (fun _ -> Domain.spawn worker) in
      List.iter Domain.join ds;
      Alcotest.(check int) "count" (iters * domains) !counter)

let value_lock_tests =
  [
    Alcotest.test_case "validation pass keeps lock" `Quick (fun () ->
        let l = Value_lock.create () in
        Alcotest.(check bool) "locked" true (Value_lock.lock_when l ~validate:(fun () -> true));
        Alcotest.(check bool) "held" true (Value_lock.is_locked l);
        Value_lock.unlock l);
    Alcotest.test_case "validation failure releases lock" `Quick (fun () ->
        let l = Value_lock.create () in
        Alcotest.(check bool) "failed" false
          (Value_lock.lock_when l ~validate:(fun () -> false));
        Alcotest.(check bool) "released" false (Value_lock.is_locked l));
    Alcotest.test_case "validate runs under the lock" `Quick (fun () ->
        let l = Value_lock.create () in
        let observed = ref false in
        ignore
          (Value_lock.lock_when l ~validate:(fun () ->
               observed := Value_lock.is_locked l;
               false));
        Alcotest.(check bool) "lock held during validate" true !observed);
    Alcotest.test_case "try variant fails on held lock without validating" `Quick
      (fun () ->
        let l = Value_lock.create () in
        ignore (Value_lock.lock_when l ~validate:(fun () -> true));
        let ran = ref false in
        Alcotest.(check bool) "try fails" false
          (Value_lock.try_lock_when l ~validate:(fun () ->
               ran := true;
               true));
        Alcotest.(check bool) "validate not run" false !ran;
        Value_lock.unlock l);
    Alcotest.test_case "try variant validates when free" `Quick (fun () ->
        let l = Value_lock.create () in
        Alcotest.(check bool) "ok" true (Value_lock.try_lock_when l ~validate:(fun () -> true));
        Value_lock.unlock l;
        Alcotest.(check bool) "reject" false
          (Value_lock.try_lock_when l ~validate:(fun () -> false));
        Alcotest.(check bool) "released after reject" false (Value_lock.is_locked l));
  ]

let () =
  Alcotest.run "sync"
    [
      ("backoff", backoff_tests);
      ("ttas", lock_single_thread "ttas" ttas_ops
              @ [ mutual_exclusion "ttas" Ttas.acquire Ttas.release Ttas.create ]);
      ("try-lock", lock_single_thread "try-lock" try_lock_ops
                  @ [ mutual_exclusion "try-lock" Try_lock.lock Try_lock.unlock Try_lock.create ]);
      ("value-lock", value_lock_tests);
    ]
