(* Tests for the benchmark harness: workload distribution, pre-population,
   the real-domain runner, sweeps and report rendering. *)

module W = Vbl_harness.Workload

let workload_tests =
  [
    Alcotest.test_case "update fraction matches the spec" `Quick (fun () ->
        let rng = Vbl_util.Rng.create ~seed:5L () in
        let spec = W.uniform ~update_percent:20 ~key_range:100 in
        let n = 50_000 in
        let updates = ref 0 and inserts = ref 0 and removes = ref 0 in
        for _ = 1 to n do
          match W.next rng spec with
          | W.Insert _ ->
              incr updates;
              incr inserts
          | W.Remove _ ->
              incr updates;
              incr removes
          | W.Contains _ -> ()
        done;
        let frac = float_of_int !updates /. float_of_int n in
        Alcotest.(check bool) "≈20%" true (frac > 0.18 && frac < 0.22);
        (* insert/remove balanced *)
        let bal = float_of_int !inserts /. float_of_int !updates in
        Alcotest.(check bool) "balanced" true (bal > 0.45 && bal < 0.55));
    Alcotest.test_case "0%% yields only contains; 100%% only updates" `Quick (fun () ->
        let rng = Vbl_util.Rng.create ~seed:6L () in
        for _ = 1 to 1_000 do
          (match W.next rng (W.uniform ~update_percent:0 ~key_range:10) with
          | W.Contains _ -> ()
          | _ -> Alcotest.fail "update under 0%");
          match W.next rng (W.uniform ~update_percent:100 ~key_range:10) with
          | W.Contains _ -> Alcotest.fail "contains under 100%"
          | _ -> ()
        done);
    Alcotest.test_case "keys stay in range" `Quick (fun () ->
        let rng = Vbl_util.Rng.create ~seed:7L () in
        for _ = 1 to 10_000 do
          match W.next rng (W.uniform ~update_percent:50 ~key_range:17) with
          | W.Insert v | W.Remove v | W.Contains v ->
              if v < 1 || v > 17 then Alcotest.failf "key %d out of range" v
        done);
    Alcotest.test_case "prepopulation is about half the range" `Quick (fun () ->
        let module S = Vbl_lists.Registry.Vbl in
        let t = S.create () in
        let rng = Vbl_util.Rng.create ~seed:8L () in
        W.prepopulate (module S) t rng (W.uniform ~update_percent:0 ~key_range:1000);
        let size = S.size t in
        Alcotest.(check bool) "≈500" true (size > 400 && size < 600));
    Alcotest.test_case "zipfian keys are skewed, uniform keys are not" `Quick (fun () ->
        let rng = Vbl_util.Rng.create ~seed:9L () in
        let hot spec =
          let n = 20_000 in
          let low = ref 0 in
          for _ = 1 to n do
            if W.draw_key rng spec <= 10 then incr low
          done;
          float_of_int !low /. float_of_int n
        in
        let zipf_mass = hot (W.zipfian ~update_percent:0 ~key_range:1000 ()) in
        let unif_mass = hot (W.uniform ~update_percent:0 ~key_range:1000) in
        Alcotest.(check bool)
          (Printf.sprintf "zipf %.3f >> uniform %.3f" zipf_mass unif_mass)
          true
          (zipf_mass > 10. *. unif_mass));
    Alcotest.test_case "spec validation" `Quick (fun () ->
        Alcotest.check_raises "bad percent"
          (Invalid_argument "Workload: update_percent must be in [0, 100]") (fun () ->
            W.validate (W.uniform ~update_percent:101 ~key_range:10));
        Alcotest.check_raises "bad range"
          (Invalid_argument "Workload: key_range must be >= 1") (fun () ->
            W.validate (W.uniform ~update_percent:0 ~key_range:0)));
  ]

let runner_tests =
  [
    Alcotest.test_case "runner measures and keeps the list intact" `Slow (fun () ->
        let impl = Vbl_lists.Registry.find_exn "vbl" in
        let r =
          Vbl_harness.Runner.run impl
            {
              Vbl_harness.Runner.threads = 2;
              spec = W.uniform ~update_percent:50 ~key_range:64;
              duration_s = 0.1;
              warmup_s = 0.02;
              trials = 2;
              seed = 3L;
            }
        in
        Alcotest.(check int) "trials" 2 r.Vbl_harness.Runner.throughput.Vbl_util.Stats.n;
        Alcotest.(check bool) "did work" true
          (r.Vbl_harness.Runner.throughput.Vbl_util.Stats.mean > 1000.);
        match r.Vbl_harness.Runner.invariants with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "runner validates parameters" `Quick (fun () ->
        let impl = Vbl_lists.Registry.find_exn "vbl" in
        Alcotest.check_raises "threads" (Invalid_argument "Runner.run: threads must be >= 1")
          (fun () ->
            ignore
              (Vbl_harness.Runner.run impl
                 { Vbl_harness.Runner.default_params with Vbl_harness.Runner.threads = 0 })));
  ]

let sweep_tests =
  [
    Alcotest.test_case "simulated sweep produces all points" `Slow (fun () ->
        let engine = Vbl_harness.Sweep.simulated ~horizon:5_000. ~trials:2 () in
        let points =
          Vbl_harness.Sweep.series engine ~algorithms:[ "vbl"; "lazy" ]
            ~thread_counts:[ 1; 4 ] ~update_percent:20 ~key_range:32 ~seed:1L
        in
        Alcotest.(check int) "4 points" 4 (List.length points);
        List.iter
          (fun (p : Vbl_harness.Sweep.point) ->
            Alcotest.(check int) "trials" 2 p.Vbl_harness.Sweep.throughput.Vbl_util.Stats.n;
            Alcotest.(check bool) "positive" true
              (p.Vbl_harness.Sweep.throughput.Vbl_util.Stats.mean > 0.))
          points);
    Alcotest.test_case "figure1 uses lazy and vbl only" `Slow (fun () ->
        let engine = Vbl_harness.Sweep.simulated ~horizon:5_000. ~trials:1 () in
        let points = Vbl_harness.Sweep.figure1 ~thread_counts:[ 1; 2 ] engine ~seed:1L in
        let algos =
          List.sort_uniq compare (List.map (fun p -> p.Vbl_harness.Sweep.algorithm) points)
        in
        Alcotest.(check (list string)) "algos" [ "lazy"; "vbl" ] algos);
    Alcotest.test_case "report renders a table with all rows" `Slow (fun () ->
        let engine = Vbl_harness.Sweep.simulated ~horizon:5_000. ~trials:1 () in
        let points =
          Vbl_harness.Sweep.series engine ~algorithms:[ "vbl" ] ~thread_counts:[ 1; 2; 4 ]
            ~update_percent:0 ~key_range:16 ~seed:1L
        in
        let rendered = Vbl_harness.Report.render_panel ~engine ~title:"t" points in
        let lines = String.split_on_char '\n' rendered in
        (* title + header + separator + 3 rows *)
        Alcotest.(check int) "lines" 6 (List.length lines));
    Alcotest.test_case "csv export has one line per point plus header" `Slow (fun () ->
        let engine = Vbl_harness.Sweep.simulated ~horizon:5_000. ~trials:1 () in
        let points =
          Vbl_harness.Sweep.series engine ~algorithms:[ "vbl"; "lazy" ] ~thread_counts:[ 1 ]
            ~update_percent:0 ~key_range:16 ~seed:1L
        in
        let csv = Vbl_harness.Report.points_csv points in
        Alcotest.(check int) "lines" 3 (List.length (String.split_on_char '\n' csv)));
  ]

let lookup_tests =
  [
    Alcotest.test_case "find_real resolves every registry" `Quick (fun () ->
        List.iter
          (fun name ->
            let module S = (val Vbl_harness.Sweep.find_real name) in
            Alcotest.(check string) "name" name S.name)
          [ "vbl"; "lazy"; "harris-michael"; "fomitchev-ruppert"; "vbl-versioned";
            "lazy-skiplist"; "lockfree-skiplist"; "vbl-skiplist"; "coarse-bst"; "vbl-bst" ]);
    Alcotest.test_case "find_instrumented resolves every registry" `Quick (fun () ->
        List.iter
          (fun name ->
            let module S = (val Vbl_harness.Sweep.find_instrumented name) in
            Alcotest.(check string) "name" name S.name)
          [ "vbl"; "lazy"; "harris-michael-tagged"; "vbl-postlock";
            "lazy-skiplist"; "lockfree-skiplist"; "vbl-skiplist"; "vbl-bst" ]);
    Alcotest.test_case "unknown names are rejected" `Quick (fun () ->
        Alcotest.check_raises "real"
          (Invalid_argument "Sweep.find_real: unknown algorithm no-such-thing")
          (fun () -> ignore (Vbl_harness.Sweep.find_real "no-such-thing")));
  ]

let () =
  Alcotest.run "harness"
    [
      ("workload", workload_tests);
      ("runner", runner_tests);
      ("sweep", sweep_tests);
      ("lookup", lookup_tests);
    ]
