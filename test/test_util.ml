(* Unit and property tests for the util library: RNG determinism and
   distribution sanity, statistics, table rendering. *)

module Rng = Vbl_util.Rng
module Stats = Vbl_util.Stats
module Table = Vbl_util.Table

let rng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Rng.create ~seed:42L () and b = Rng.create ~seed:42L () in
        for _ = 1 to 100 do
          Alcotest.(check int64) "lockstep" (Rng.next_int64 a) (Rng.next_int64 b)
        done);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Rng.next_int64 a = Rng.next_int64 b then incr same
        done;
        Alcotest.(check bool) "mostly different" true (!same < 4));
    Alcotest.test_case "split streams are independent of parent use" `Quick (fun () ->
        let parent1 = Rng.create ~seed:7L () in
        let child1 = Rng.split parent1 in
        let first = Rng.next_int64 child1 in
        let parent2 = Rng.create ~seed:7L () in
        let child2 = Rng.split parent2 in
        Alcotest.(check int64) "same child stream" first (Rng.next_int64 child2));
    Alcotest.test_case "int respects bound" `Quick (fun () ->
        let r = Rng.create ~seed:3L () in
        for _ = 1 to 10_000 do
          let v = Rng.int r 17 in
          if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
        done);
    Alcotest.test_case "int bound=1 always 0" `Quick (fun () ->
        let r = Rng.create ~seed:3L () in
        for _ = 1 to 100 do
          Alcotest.(check int) "zero" 0 (Rng.int r 1)
        done);
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        let r = Rng.create ~seed:3L () in
        Alcotest.check_raises "zero bound"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int r 0)));
    Alcotest.test_case "in_range covers range" `Quick (fun () ->
        let r = Rng.create ~seed:5L () in
        let seen = Array.make 10 false in
        for _ = 1 to 5_000 do
          let v = Rng.in_range r ~lo:5 ~hi:15 in
          if v < 5 || v >= 15 then Alcotest.failf "out of range: %d" v;
          seen.(v - 5) <- true
        done;
        Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen));
    Alcotest.test_case "float in unit interval" `Quick (fun () ->
        let r = Rng.create ~seed:9L () in
        for _ = 1 to 10_000 do
          let f = Rng.float r in
          if f < 0. || f >= 1. then Alcotest.failf "out of range: %f" f
        done);
    Alcotest.test_case "int roughly uniform" `Quick (fun () ->
        let r = Rng.create ~seed:13L () in
        let buckets = Array.make 10 0 in
        let n = 100_000 in
        for _ = 1 to n do
          let v = Rng.int r 10 in
          buckets.(v) <- buckets.(v) + 1
        done;
        Array.iteri
          (fun i c ->
            let expected = n / 10 in
            if abs (c - expected) > expected / 5 then
              Alcotest.failf "bucket %d count %d too far from %d" i c expected)
          buckets);
    Alcotest.test_case "bool is balanced" `Quick (fun () ->
        let r = Rng.create ~seed:17L () in
        let trues = ref 0 in
        let n = 100_000 in
        for _ = 1 to n do
          if Rng.bool r then incr trues
        done;
        Alcotest.(check bool) "near half" true (abs (!trues - (n / 2)) < n / 20));
    Alcotest.test_case "stream is a pure function of seed and index" `Quick
      (fun () ->
        let a = Rng.stream ~seed:42L ~index:3 in
        (* Deriving stream 3 must not depend on any other stream's state. *)
        let b0 = Rng.stream ~seed:42L ~index:0 in
        ignore (Rng.next_int64 b0);
        let a' = Rng.stream ~seed:42L ~index:3 in
        for _ = 1 to 50 do
          Alcotest.(check int64) "identical" (Rng.next_int64 a) (Rng.next_int64 a')
        done);
    Alcotest.test_case "stream indexes give distinct streams" `Quick (fun () ->
        let streams = List.init 8 (fun i -> (i, Rng.stream ~seed:42L ~index:i)) in
        let firsts = List.map (fun (i, r) -> (i, Rng.next_int64 r)) streams in
        List.iter
          (fun (i, vi) ->
            List.iter
              (fun (j, vj) ->
                if i < j && vi = vj then
                  Alcotest.failf "streams %d and %d collide on their first draw" i j)
              firsts)
          firsts;
        (* And streams with the same index but different seeds diverge. *)
        let x = Rng.stream ~seed:1L ~index:0 and y = Rng.stream ~seed:2L ~index:0 in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Rng.next_int64 x = Rng.next_int64 y then incr same
        done;
        Alcotest.(check bool) "mostly different" true (!same < 4));
    Alcotest.test_case "stream rejects negative index" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Rng.stream: index must be >= 0") (fun () ->
            ignore (Rng.stream ~seed:1L ~index:(-1))));
  ]

(* ------------------------------------------------------------------ *)
(* Goodness of fit.  Pearson chi-squared against the claimed           *)
(* distribution, 1e6 draws from a fixed seed.  The critical value for  *)
(* df = 99 at significance 0.001 is 148.23: a correct generator fails  *)
(* one run in a thousand, and these runs are seeded, so a failure is a *)
(* real distribution bug, not flakiness.                               *)
(* ------------------------------------------------------------------ *)

let chi_squared ~observed ~expected =
  let chi2 = ref 0. in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      let d = float_of_int o -. e in
      chi2 := !chi2 +. (d *. d /. e))
    observed;
  !chi2

let critical_df99_p001 = 148.23

let statistical_tests =
  [
    Alcotest.test_case "chi-squared: Rng.int is uniform (1e6 draws)" `Quick (fun () ->
        let r = Rng.create ~seed:0xC41L () in
        let k = 100 and n = 1_000_000 in
        let observed = Array.make k 0 in
        for _ = 1 to n do
          let v = Rng.int r k in
          observed.(v) <- observed.(v) + 1
        done;
        let expected = Array.make k (float_of_int n /. float_of_int k) in
        let chi2 = chi_squared ~observed ~expected in
        Alcotest.(check bool)
          (Printf.sprintf "chi2 %.1f below critical %.2f (df=99, p=0.001)" chi2
             critical_df99_p001)
          true (chi2 < critical_df99_p001));
    Alcotest.test_case "chi-squared: Zipf s=1 matches (1/k)/H_n (1e6 draws)" `Quick
      (fun () ->
        let k = 100 and n = 1_000_000 in
        let z = Vbl_util.Zipf.create ~s:1.0 ~n:k () in
        let r = Rng.create ~seed:0x21FL () in
        let observed = Array.make k 0 in
        for _ = 1 to n do
          let v = Vbl_util.Zipf.sample z r in
          observed.(v - 1) <- observed.(v - 1) + 1
        done;
        let harmonic = ref 0. in
        for i = 1 to k do
          harmonic := !harmonic +. (1. /. float_of_int i)
        done;
        let expected =
          Array.init k (fun i ->
              float_of_int n /. (float_of_int (i + 1) *. !harmonic))
        in
        (* Smallest expected cell: 1e6 / (100 * H_100) ~ 1900 >> 5, so the
           chi-squared approximation is valid for every bucket. *)
        let chi2 = chi_squared ~observed ~expected in
        Alcotest.(check bool)
          (Printf.sprintf "chi2 %.1f below critical %.2f (df=99, p=0.001)" chi2
             critical_df99_p001)
          true (chi2 < critical_df99_p001));
    Alcotest.test_case "stream outputs do not overlap across indexes" `Quick (fun () ->
        (* Jump-ahead-style stream derivation is only useful if the streams
           never re-enter each other's sequences: the first 10k outputs of
           streams 0..3 must be pairwise disjoint (64-bit outputs collide
           by birthday only with probability ~4e-11 here). *)
        let per_stream = 10_000 in
        let seen : (int64, int) Hashtbl.t = Hashtbl.create (4 * per_stream) in
        for index = 0 to 3 do
          let r = Rng.stream ~seed:42L ~index in
          for draw = 1 to per_stream do
            let v = Rng.next_int64 r in
            match Hashtbl.find_opt seen v with
            | Some other when other <> index ->
                Alcotest.failf
                  "streams %d and %d share output %Ld (draw %d of stream %d)" other
                  index v draw index
            | _ -> Hashtbl.replace seen v index
          done
        done);
  ]

let stats_tests =
  let feq = Alcotest.float 1e-9 in
  [
    Alcotest.test_case "mean" `Quick (fun () ->
        Alcotest.check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]));
    Alcotest.test_case "stddev of constant is zero" `Quick (fun () ->
        Alcotest.check feq "stddev" 0. (Stats.stddev [| 5.; 5.; 5. |]));
    Alcotest.test_case "stddev sample formula" `Quick (fun () ->
        (* var of 2,4,4,4,5,5,7,9 is 32/7 with n-1 denominator *)
        let s = Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
        Alcotest.check (Alcotest.float 1e-6) "stddev" (sqrt (32. /. 7.)) s);
    Alcotest.test_case "stddev singleton is zero" `Quick (fun () ->
        Alcotest.check feq "stddev" 0. (Stats.stddev [| 1.0 |]));
    Alcotest.test_case "percentile endpoints" `Quick (fun () ->
        let xs = [| 10.; 20.; 30.; 40. |] in
        Alcotest.check feq "p0" 10. (Stats.percentile xs 0.);
        Alcotest.check feq "p100" 40. (Stats.percentile xs 100.));
    Alcotest.test_case "percentile interpolates" `Quick (fun () ->
        Alcotest.check feq "p50" 25. (Stats.percentile [| 10.; 20.; 30.; 40. |] 50.));
    Alcotest.test_case "median odd length" `Quick (fun () ->
        Alcotest.check feq "p50" 20. (Stats.percentile [| 30.; 10.; 20. |] 50.));
    Alcotest.test_case "summarize" `Quick (fun () ->
        let s = Stats.summarize [| 3.; 1.; 2. |] in
        Alcotest.(check int) "n" 3 s.Stats.n;
        Alcotest.check feq "mean" 2. s.Stats.mean;
        Alcotest.check feq "min" 1. s.Stats.min;
        Alcotest.check feq "max" 3. s.Stats.max;
        Alcotest.check feq "median" 2. s.Stats.median);
    Alcotest.test_case "empty input rejected" `Quick (fun () ->
        Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty")
          (fun () -> ignore (Stats.mean [||])));
    Alcotest.test_case "speedup" `Quick (fun () ->
        Alcotest.check feq "2x" 2. (Stats.speedup ~baseline:5. 10.));
    Alcotest.test_case "summary_with_percentiles rejects empty input" `Quick
      (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Stats.summary_with_percentiles: empty") (fun () ->
            ignore (Stats.summary_with_percentiles [||])));
    Alcotest.test_case "summary_with_percentiles single element" `Quick (fun () ->
        let s = Stats.summary_with_percentiles [| 7. |] in
        Alcotest.(check int) "n" 1 s.Stats.base.Stats.n;
        Alcotest.check feq "p50" 7. s.Stats.p50;
        Alcotest.check feq "p90" 7. s.Stats.p90;
        Alcotest.check feq "p99" 7. s.Stats.p99);
    Alcotest.test_case "summary_with_percentiles interpolates" `Quick (fun () ->
        (* 1..100: rank r maps to 1 + 99*r/100, linearly interpolated. *)
        let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
        let s = Stats.summary_with_percentiles xs in
        Alcotest.check feq "p50" 50.5 s.Stats.p50;
        Alcotest.check feq "p90" 90.1 s.Stats.p90;
        Alcotest.check feq "p99" 99.01 s.Stats.p99;
        Alcotest.check feq "mean via base" 50.5 s.Stats.base.Stats.mean;
        (* unsorted input gives the same answer *)
        let shuffled = Array.copy xs in
        let r = Rng.create ~seed:11L () in
        for i = Array.length shuffled - 1 downto 1 do
          let j = Rng.int r (i + 1) in
          let tmp = shuffled.(i) in
          shuffled.(i) <- shuffled.(j);
          shuffled.(j) <- tmp
        done;
        let s' = Stats.summary_with_percentiles shuffled in
        Alcotest.check feq "order-independent" s.Stats.p99 s'.Stats.p99);
  ]

let table_tests =
  [
    Alcotest.test_case "render aligns columns" `Quick (fun () ->
        let t = Table.create [ "name"; "value" ] in
        Table.add_row t [ "a"; "1" ];
        Table.add_row t [ "long-name"; "22" ];
        let lines = String.split_on_char '\n' (Table.render t) in
        Alcotest.(check int) "4 lines" 4 (List.length lines);
        (* all lines equally wide (right-padded) *)
        let widths = List.map String.length lines in
        Alcotest.(check bool) "uniform width" true
          (List.for_all (fun w -> w = List.hd widths) widths));
    Alcotest.test_case "short rows padded" `Quick (fun () ->
        let t = Table.create [ "a"; "b"; "c" ] in
        Table.add_row t [ "x" ];
        let csv = Table.render_csv t in
        Alcotest.(check string) "csv" "a,b,c\nx,," csv);
    Alcotest.test_case "over-long row rejected" `Quick (fun () ->
        let t = Table.create [ "a" ] in
        Alcotest.check_raises "too many"
          (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
            Table.add_row t [ "1"; "2" ]));
    Alcotest.test_case "csv quotes specials" `Quick (fun () ->
        let t = Table.create [ "h" ] in
        Table.add_row t [ "a,b" ];
        Table.add_row t [ "say \"hi\"" ];
        Alcotest.(check string) "csv" "h\n\"a,b\"\n\"say \"\"hi\"\"\""
          (Table.render_csv t));
    Alcotest.test_case "si cells" `Quick (fun () ->
        Alcotest.(check string) "millions" "12.30M" (Table.si_cell 12.3e6);
        Alcotest.(check string) "thousands" "4.50k" (Table.si_cell 4500.);
        Alcotest.(check string) "units" "89.00" (Table.si_cell 89.);
        Alcotest.(check string) "billions" "1.20G" (Table.si_cell 1.2e9));
    Alcotest.test_case "float cells" `Quick (fun () ->
        Alcotest.(check string) "default" "3.14" (Table.float_cell 3.14159);
        Alcotest.(check string) "decimals" "3.1416" (Table.float_cell ~decimals:4 3.14159));
  ]

let zipf_tests =
  [
    Alcotest.test_case "samples stay in range" `Quick (fun () ->
        let z = Vbl_util.Zipf.create ~n:100 () in
        let r = Rng.create ~seed:3L () in
        for _ = 1 to 10_000 do
          let v = Vbl_util.Zipf.sample z r in
          if v < 1 || v > 100 then Alcotest.failf "out of range: %d" v
        done);
    Alcotest.test_case "skew concentrates on low keys" `Quick (fun () ->
        let z = Vbl_util.Zipf.create ~s:1.0 ~n:1000 () in
        let r = Rng.create ~seed:4L () in
        let low = ref 0 in
        let n = 50_000 in
        for _ = 1 to n do
          if Vbl_util.Zipf.sample z r <= 10 then incr low
        done;
        (* With s=1, n=1000: P(k<=10) = H(10)/H(1000) ~ 0.39. *)
        let frac = float_of_int !low /. float_of_int n in
        Alcotest.(check bool)
          (Printf.sprintf "top-10 mass %.2f in [0.3, 0.5]" frac)
          true
          (frac > 0.3 && frac < 0.5));
    Alcotest.test_case "s=0 degenerates to uniform" `Quick (fun () ->
        let z = Vbl_util.Zipf.create ~s:0. ~n:10 () in
        let r = Rng.create ~seed:5L () in
        let counts = Array.make 11 0 in
        let n = 50_000 in
        for _ = 1 to n do
          let v = Vbl_util.Zipf.sample z r in
          counts.(v) <- counts.(v) + 1
        done;
        for k = 1 to 10 do
          let expected = n / 10 in
          if abs (counts.(k) - expected) > expected / 4 then
            Alcotest.failf "key %d count %d too far from uniform %d" k counts.(k) expected
        done);
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be >= 1")
          (fun () -> ignore (Vbl_util.Zipf.create ~n:0 ()));
        Alcotest.check_raises "s" (Invalid_argument "Zipf.create: s must be >= 0")
          (fun () -> ignore (Vbl_util.Zipf.create ~s:(-1.) ~n:5 ())));
  ]

let () =
  Alcotest.run "util"
    [
      ("rng", rng_tests);
      ("statistical", statistical_tests);
      ("stats", stats_tests);
      ("table", table_tests);
      ("zipf", zipf_tests);
    ]
