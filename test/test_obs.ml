(* Tests for the observability layer: the sharded counter registry, the
   log-bucketed latency histograms, the event-trace ring, the probe
   install/uninstall contract, and — end to end — the counters produced
   by a real harness run and by a deterministically forced 2-thread
   contention schedule on the instrumented backend. *)

module Obs = Vbl_obs
module Metrics = Vbl_obs.Metrics
module Histogram = Vbl_obs.Histogram
module Trace = Vbl_obs.Trace
module Probe = Vbl_obs.Probe
module Instr = Vbl_memops.Instr_mem
open Vbl_sched

(* Every test that installs a probe or touches the global registry runs
   single-threaded, so reset/install here are at quiescence as required. *)
let with_metrics_probe f =
  Metrics.reset ();
  Probe.install (Probe.metrics ());
  Fun.protect ~finally:Probe.uninstall f

(* ------------------------------------------------------------------ *)
(* Metrics registry.                                                   *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    Alcotest.test_case "labels are unique and indexes dense" `Quick (fun () ->
        Alcotest.(check int) "count" Metrics.num_counters (List.length Metrics.all);
        let labels = List.map Metrics.label Metrics.all in
        Alcotest.(check int) "labels unique" (List.length labels)
          (List.length (List.sort_uniq compare labels));
        let idxs = List.sort compare (List.map Metrics.index Metrics.all) in
        Alcotest.(check (list int)) "dense" (List.init Metrics.num_counters Fun.id) idxs);
    Alcotest.test_case "incr / snapshot / reset" `Quick (fun () ->
        Metrics.reset ();
        Metrics.incr Metrics.Restarts;
        Metrics.incr Metrics.Restarts;
        Metrics.add Metrics.Cas_attempts 5;
        let s = Metrics.snapshot () in
        Alcotest.(check int) "restarts" 2 (Metrics.get s Metrics.Restarts);
        Alcotest.(check int) "cas" 5 (Metrics.get s Metrics.Cas_attempts);
        Alcotest.(check int) "untouched" 0 (Metrics.get s Metrics.Logical_deletes);
        Metrics.reset ();
        let z = Metrics.snapshot () in
        List.iter (fun c -> Alcotest.(check int) "zeroed" 0 (Metrics.get z c)) Metrics.all);
    Alcotest.test_case "diff and sum" `Quick (fun () ->
        Metrics.reset ();
        Metrics.incr Metrics.Traversal_steps;
        let before = Metrics.snapshot () in
        Metrics.add Metrics.Traversal_steps 9;
        let after = Metrics.snapshot () in
        let d = Metrics.diff after before in
        Alcotest.(check int) "diff" 9 (Metrics.get d Metrics.Traversal_steps);
        let s = Metrics.sum [ d; d; d ] in
        Alcotest.(check int) "sum" 27 (Metrics.get s Metrics.Traversal_steps));
    Alcotest.test_case "to_assoc order and to_json shape" `Quick (fun () ->
        Metrics.reset ();
        Metrics.incr Metrics.Restarts;
        let s = Metrics.snapshot () in
        Alcotest.(check (list string))
          "assoc follows reporting order"
          (List.map Metrics.label Metrics.all)
          (List.map fst (Metrics.to_assoc s));
        let json = Metrics.to_json s in
        Alcotest.(check bool) "json has the field" true
          (let sub = "\"restarts\": 1" in
           let rec find i =
             i + String.length sub <= String.length json
             && (String.sub json i (String.length sub) = sub || find (i + 1))
           in
           find 0));
    Alcotest.test_case "shard labels are memoized and stable" `Quick (fun () ->
        Alcotest.(check string) "shard0" "shard0" (Metrics.shard_label 0);
        Alcotest.(check string) "shard9" "shard9" (Metrics.shard_label 9);
        Alcotest.(check bool) "memoized: same physical string" true
          (Metrics.shard_label 9 == Metrics.shard_label 9);
        Alcotest.check_raises "negative raises"
          (Invalid_argument "Metrics.shard_label: negative index") (fun () ->
            ignore (Metrics.shard_label (-1))));
    Alcotest.test_case "multi-domain increments all land" `Quick (fun () ->
        Metrics.reset ();
        let per_domain = 10_000 in
        let ds =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to per_domain do
                    Metrics.incr Metrics.Traversal_steps
                  done))
        in
        List.iter Domain.join ds;
        Alcotest.(check int) "total" (4 * per_domain)
          (Metrics.get (Metrics.snapshot ()) Metrics.Traversal_steps));
  ]

(* ------------------------------------------------------------------ *)
(* Latency histograms.                                                 *)
(* ------------------------------------------------------------------ *)

let histogram_tests =
  [
    Alcotest.test_case "empty histogram summarizes to None" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Histogram.summarize (Histogram.create ()) = None));
    Alcotest.test_case "single sample: exact extremes, bucketed middle" `Quick
      (fun () ->
        let h = Histogram.create () in
        Histogram.record h 1000;
        match Histogram.summarize h with
        | None -> Alcotest.fail "expected a summary"
        | Some s ->
            Alcotest.(check int) "n" 1 s.Histogram.n;
            Alcotest.check (Alcotest.float 1e-9) "max exact" 1000. s.Histogram.max;
            (* quantiles are bucket midpoints: within 12.5% of the truth *)
            Alcotest.(check bool) "p50 close" true
              (abs_float (s.Histogram.p50 -. 1000.) <= 125.);
            Alcotest.(check bool) "p99 close" true
              (abs_float (s.Histogram.p99 -. 1000.) <= 125.));
    Alcotest.test_case "quantiles are ordered and within relative error" `Quick
      (fun () ->
        let h = Histogram.create () in
        for v = 1 to 10_000 do
          Histogram.record h v
        done;
        match Histogram.summarize h with
        | None -> Alcotest.fail "expected a summary"
        | Some s ->
            Alcotest.(check bool) "p50 <= p90" true (s.Histogram.p50 <= s.Histogram.p90);
            Alcotest.(check bool) "p90 <= p99" true (s.Histogram.p90 <= s.Histogram.p99);
            Alcotest.(check bool) "p99 <= max" true (s.Histogram.p99 <= s.Histogram.max);
            Alcotest.(check bool)
              (Printf.sprintf "p50 %.0f within 12.5%% of 5000" s.Histogram.p50)
              true
              (abs_float (s.Histogram.p50 -. 5_000.) <= 650.);
            Alcotest.(check bool)
              (Printf.sprintf "p99 %.0f within 12.5%% of 9900" s.Histogram.p99)
              true
              (abs_float (s.Histogram.p99 -. 9_900.) <= 1_300.);
            Alcotest.check (Alcotest.float 1e-9) "max exact" 10_000. s.Histogram.max;
            Alcotest.(check bool) "mean near 5000" true
              (abs_float (s.Histogram.mean -. 5_000.5) <= 1.));
    Alcotest.test_case "small values are exact" `Quick (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.record h) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
        Alcotest.check (Alcotest.float 1e-9) "p0" 0. (Histogram.percentile h 0.);
        Alcotest.check (Alcotest.float 1e-9) "p100" 7. (Histogram.percentile h 100.));
    Alcotest.test_case "negative samples clamp to zero" `Quick (fun () ->
        let h = Histogram.create () in
        Histogram.record h (-42);
        Alcotest.(check int) "counted" 1 (Histogram.count h);
        Alcotest.check (Alcotest.float 1e-9) "max" 0. (Histogram.percentile h 100.));
    Alcotest.test_case "merge adds counts and keeps extremes" `Quick (fun () ->
        let a = Histogram.create () and b = Histogram.create () in
        for _ = 1 to 10 do
          Histogram.record a 100
        done;
        Histogram.record b 1_000_000;
        Histogram.merge ~into:a b;
        match Histogram.summarize a with
        | None -> Alcotest.fail "expected a summary"
        | Some s ->
            Alcotest.(check int) "n" 11 s.Histogram.n;
            Alcotest.check (Alcotest.float 1e-9) "max from b" 1_000_000. s.Histogram.max;
            Alcotest.(check bool) "p50 still around 100" true
              (abs_float (s.Histogram.p50 -. 100.) <= 13.));
    Alcotest.test_case "huge values do not crash the bucketing" `Quick (fun () ->
        let h = Histogram.create () in
        Histogram.record h max_int;
        Histogram.record h 1;
        Alcotest.(check int) "n" 2 (Histogram.count h);
        Alcotest.(check bool) "p100 positive" true (Histogram.percentile h 100. > 0.));
    Alcotest.test_case "empty histogram: nan percentile and mean, no raise" `Quick
      (fun () ->
        let h = Histogram.create () in
        Alcotest.(check bool) "p50 nan" true (Float.is_nan (Histogram.percentile h 50.));
        Alcotest.(check bool) "p0 nan" true (Float.is_nan (Histogram.percentile h 0.));
        Alcotest.(check bool) "p100 nan" true (Float.is_nan (Histogram.percentile h 100.));
        Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h));
        (* range errors still raise, even on an empty histogram *)
        Alcotest.check_raises "p>100 raises"
          (Invalid_argument "Histogram.percentile: p out of range") (fun () ->
            ignore (Histogram.percentile h 101.)));
    Alcotest.test_case "single sample: every percentile is that sample" `Quick
      (fun () ->
        let h = Histogram.create () in
        Histogram.record h 7;
        (* 7 is below the exact-bucket boundary, so no bucketing error *)
        List.iter
          (fun p ->
            Alcotest.check (Alcotest.float 1e-9)
              (Printf.sprintf "p%.0f" p)
              7. (Histogram.percentile h p))
          [ 0.; 50.; 99.9; 100. ];
        Alcotest.check (Alcotest.float 1e-9) "mean" 7. (Histogram.mean h));
    Alcotest.test_case "values above the top bucket keep percentiles finite" `Quick
      (fun () ->
        (* max_int lands in the final log bucket, whose lower bound is
           2^62: the old int-arithmetic bucket_low overflowed to min_int
           here, producing negative percentiles. *)
        let h = Histogram.create () in
        for _ = 1 to 100 do
          Histogram.record h max_int
        done;
        let p99 = Histogram.percentile h 99. in
        Alcotest.(check bool) "p99 finite" true (Float.is_finite p99);
        Alcotest.(check bool) "p99 at least 2^62" true (p99 >= Float.ldexp 1. 62);
        Alcotest.(check bool) "p99 not above max sample" true
          (p99 <= float_of_int max_int);
        Alcotest.check (Alcotest.float 1e-9) "p100 exact max" (float_of_int max_int)
          (Histogram.percentile h 100.);
        Alcotest.(check bool) "mean in the top octave" true
          (Histogram.mean h >= Float.ldexp 1. 62));
    Alcotest.test_case "p99.9 on 1000 samples does not overshoot to max" `Quick
      (fun () ->
        (* 99.9/100*1000 = 999.00000000000006 in floats: a bare ceil gave
           rank 1000 and returned the outlier max.  The closest rank is
           999, which must land in the bulk. *)
        let h = Histogram.create () in
        for _ = 1 to 999 do
          Histogram.record h 100
        done;
        Histogram.record h 1_000_000;
        Alcotest.(check bool) "p99.9 in the bulk" true (Histogram.percentile h 99.9 <= 113.);
        Alcotest.check (Alcotest.float 1e-9) "p99.99 is the exact max" 1_000_000.
          (Histogram.percentile h 99.99));
    Alcotest.test_case "sparse two-sample histogram: extreme percentiles exact" `Quick
      (fun () ->
        let h = Histogram.create () in
        Histogram.record h 10;
        Histogram.record h 1_000_000;
        (* rank 1 -> exact min, rank n -> exact max, no bucket smearing *)
        Alcotest.check (Alcotest.float 1e-9) "p0.1 = min" 10. (Histogram.percentile h 0.1);
        Alcotest.check (Alcotest.float 1e-9) "p50 = min" 10. (Histogram.percentile h 50.);
        Alcotest.check (Alcotest.float 1e-9) "p99.9 = max" 1_000_000.
          (Histogram.percentile h 99.9));
    Alcotest.test_case "summary carries min, p999, p9999" `Quick (fun () ->
        let h = Histogram.create () in
        for v = 1 to 10_000 do
          Histogram.record h v
        done;
        match Histogram.summarize h with
        | None -> Alcotest.fail "expected a summary"
        | Some s ->
            Alcotest.check (Alcotest.float 1e-9) "min exact" 1. s.Histogram.min;
            Alcotest.(check bool) "p99 <= p999" true (s.Histogram.p99 <= s.Histogram.p999);
            Alcotest.(check bool) "p999 <= p9999" true
              (s.Histogram.p999 <= s.Histogram.p9999);
            Alcotest.(check bool) "p9999 <= max" true (s.Histogram.p9999 <= s.Histogram.max);
            Alcotest.(check bool)
              (Printf.sprintf "p999 %.0f within 12.5%% of 9990" s.Histogram.p999)
              true
              (abs_float (s.Histogram.p999 -. 9_990.) <= 1_300.));
    Alcotest.test_case "min_value / max_value / sum / clear" `Quick (fun () ->
        let h = Histogram.create () in
        Alcotest.(check bool) "empty min nan" true (Float.is_nan (Histogram.min_value h));
        Alcotest.(check bool) "empty max nan" true (Float.is_nan (Histogram.max_value h));
        List.iter (Histogram.record h) [ 3; 500; 100 ];
        Alcotest.check (Alcotest.float 1e-9) "min" 3. (Histogram.min_value h);
        Alcotest.check (Alcotest.float 1e-9) "max" 500. (Histogram.max_value h);
        Alcotest.check (Alcotest.float 1e-9) "sum" 603. (Histogram.sum h);
        Histogram.clear h;
        Alcotest.(check int) "cleared" 0 (Histogram.count h);
        Alcotest.(check bool) "no summary" true (Histogram.summarize h = None));
    Alcotest.test_case "merged combines counts and extremes" `Quick (fun () ->
        let a = Histogram.create () and b = Histogram.create () and c = Histogram.create () in
        Histogram.record a 10;
        Histogram.record b 20;
        Histogram.record c 1_000_000;
        let m = Histogram.merged [ a; b; c ] in
        Alcotest.(check int) "n" 3 (Histogram.count m);
        Alcotest.check (Alcotest.float 1e-9) "min" 10. (Histogram.min_value m);
        Alcotest.check (Alcotest.float 1e-9) "max" 1_000_000. (Histogram.max_value m);
        (* sources untouched *)
        Alcotest.(check int) "a intact" 1 (Histogram.count a));
    Alcotest.test_case "cumulative_buckets covers all samples" `Quick (fun () ->
        let h = Histogram.create () in
        Alcotest.(check bool) "empty has a bucket" true
          (Histogram.cumulative_buckets h = [ (8., 0) ]);
        List.iter (Histogram.record h) [ 1; 2; 3 ];
        Alcotest.(check bool) "small values in first bucket" true
          (Histogram.cumulative_buckets h = [ (8., 3) ]);
        Histogram.record h 100_000;
        let buckets = Histogram.cumulative_buckets h in
        let prev = ref 0 in
        List.iter
          (fun (_, c) ->
            Alcotest.(check bool) "non-decreasing" true (c >= !prev);
            prev := c)
          buckets;
        Alcotest.(check int) "last covers everything" 4 (snd (List.nth buckets (List.length buckets - 1))));
  ]

(* ------------------------------------------------------------------ *)
(* Event-trace ring.                                                   *)
(* ------------------------------------------------------------------ *)

let ev thread step kind = { Trace.thread; step; kind }

let trace_tests =
  [
    Alcotest.test_case "ring keeps the most recent events" `Quick (fun () ->
        let t = Trace.create ~capacity:4 () in
        for i = 1 to 6 do
          Trace.emit t (ev 0 (Printf.sprintf "s%d" i) Trace.Read)
        done;
        Alcotest.(check int) "emitted" 6 (Trace.emitted t);
        Alcotest.(check int) "dropped" 2 (Trace.dropped t);
        Alcotest.(check (list string))
          "oldest-first, oldest two gone"
          [ "s3"; "s4"; "s5"; "s6" ]
          (List.map (fun (e : Trace.event) -> e.Trace.step) (Trace.events t)));
    Alcotest.test_case "event rendering carries thread, kind, step" `Quick (fun () ->
        let line = Trace.event_to_string (ev 3 "X5.next" Trace.Write) in
        List.iter
          (fun needle ->
            let rec find i =
              i + String.length needle <= String.length line
              && (String.sub line i (String.length needle) = needle || find (i + 1))
            in
            Alcotest.(check bool) ("has " ^ needle) true (find 0))
          [ "t3"; "X5.next"; Trace.kind_to_string Trace.Write ]);
  ]

(* ------------------------------------------------------------------ *)
(* Contention profiler, flight recorder, interval reporter.            *)
(* ------------------------------------------------------------------ *)

let contention_tests =
  [
    Alcotest.test_case "ring-overflow count reaches the metrics registry" `Quick
      (fun () ->
        Metrics.reset ();
        let t = Trace.create ~capacity:4 () in
        for i = 1 to 6 do
          Trace.emit t (ev 0 (Printf.sprintf "s%d" i) Trace.Read)
        done;
        Alcotest.(check int) "trace_dropped counter" 2
          (Metrics.get (Metrics.snapshot ()) Metrics.Trace_dropped));
    Alcotest.test_case "contention: per-site attribution and hot shards" `Quick
      (fun () ->
        Obs.Contention.reset ();
        Obs.Contention.enable ();
        Fun.protect ~finally:Obs.Contention.disable (fun () ->
            Obs.Contention.record_wait Obs.Contention.Lock_next_at 100;
            Obs.Contention.record_wait Obs.Contention.Lock_next_at 300;
            Obs.Contention.record_hold Obs.Contention.Lock_next_at 50;
            Obs.Contention.record_wait Obs.Contention.Blocking_acquire 1_000;
            Obs.Contention.shard_op 3;
            Obs.Contention.shard_op 3;
            Obs.Contention.shard_op 1);
        let stats = Obs.Contention.report () in
        let by site =
          List.find (fun (s : Obs.Contention.site_stats) -> s.site = site) stats
        in
        Alcotest.(check int) "two lock_next_at waits" 2
          (Histogram.count (by Obs.Contention.Lock_next_at).wait);
        Alcotest.(check int) "one lock_next_at hold" 1
          (Histogram.count (by Obs.Contention.Lock_next_at).hold);
        Alcotest.(check int) "one blocking acquire" 1
          (Histogram.count (by Obs.Contention.Blocking_acquire).wait);
        (match Obs.Contention.hot_shards () with
        | (s, n) :: _ ->
            Alcotest.(check int) "hottest shard" 3 s;
            Alcotest.(check int) "its traffic" 2 n
        | [] -> Alcotest.fail "expected sharded traffic");
        let table = Obs.Contention.render_site_table () in
        Alcotest.(check bool) "table names the site" true
          (let needle = "lock_next_at" in
           let rec find i =
             i + String.length needle <= String.length table
             && (String.sub table i (String.length needle) = needle || find (i + 1))
           in
           find 0);
        Obs.Contention.reset ();
        Alcotest.(check (list (pair int int))) "reset clears shards" []
          (Obs.Contention.hot_shards ()));
    Alcotest.test_case "recorder: ring keeps most recent, overflow counted" `Quick
      (fun () ->
        Metrics.reset ();
        Obs.Recorder.reset ();
        Obs.Recorder.set_capacity 2;
        Obs.Recorder.set_enabled true;
        (* A fresh domain gets a fresh ring at the new capacity. *)
        Domain.join
          (Domain.spawn (fun () ->
               for i = 1 to 3 do
                 Obs.Recorder.record ~thread:9 ~kind:Obs.Recorder.Insert ~key:i
                   ~shard:(-1) ~ok:true ~restarts:0 ~t0_ns:(i * 10)
                   ~t1_ns:((i * 10) + 5)
               done));
        Obs.Recorder.set_enabled false;
        Obs.Recorder.set_capacity 4096;
        let mine =
          List.filter
            (fun (e : Obs.Recorder.entry) -> e.thread = 9)
            (Obs.Recorder.entries ())
        in
        Alcotest.(check (list int))
          "two most recent survive, start-time order" [ 2; 3 ]
          (List.map (fun (e : Obs.Recorder.entry) -> e.key) mine);
        Alcotest.(check bool) "overflow counted" true (Obs.Recorder.dropped () >= 1);
        Alcotest.(check bool) "overflow reaches metrics" true
          (Metrics.get (Metrics.snapshot ()) Metrics.Recorder_dropped >= 1);
        let dump = Obs.Recorder.dump () in
        Alcotest.(check bool) "dump has the header" true
          (String.length dump >= 15 && String.sub dump 0 15 = "flight recorder");
        Obs.Recorder.reset ();
        Alcotest.(check (list int)) "reset empties" []
          (List.map
             (fun (e : Obs.Recorder.entry) -> e.key)
             (Obs.Recorder.entries ())));
    Alcotest.test_case "interval reporter: snapshot-delta lines" `Quick (fun () ->
        Metrics.reset ();
        let r = Obs.Interval.start () in
        Metrics.add Metrics.Ops_completed 100;
        let l1 = Obs.Interval.tick r in
        Metrics.add Metrics.Ops_completed 50;
        let l2 = Obs.Interval.tick r in
        let has needle hay =
          let rec find i =
            i + String.length needle <= String.length hay
            && (String.sub hay i (String.length needle) = needle || find (i + 1))
          in
          find 0
        in
        Alcotest.(check bool) "first tick numbered" true (has "[interval 1]" l1);
        Alcotest.(check bool) "second tick numbered" true (has "[interval 2]" l2);
        Alcotest.(check bool) "reports restart rate" true (has "restarts/op" l1));
  ]

(* ------------------------------------------------------------------ *)
(* Probe contract.                                                     *)
(* ------------------------------------------------------------------ *)

let probe_tests =
  [
    Alcotest.test_case "no probe installed: counts go nowhere" `Quick (fun () ->
        if Probe.installed () then Probe.uninstall ();
        Metrics.reset ();
        Probe.count Metrics.Restarts;
        Probe.count Metrics.Cas_failures;
        Alcotest.(check int) "restarts still zero" 0
          (Metrics.get (Metrics.snapshot ()) Metrics.Restarts);
        Alcotest.(check bool) "tracing off" false (Probe.trace_enabled ()));
    Alcotest.test_case "metrics probe routes counts to the registry" `Quick (fun () ->
        with_metrics_probe (fun () ->
            Probe.count Metrics.Restarts;
            Alcotest.(check int) "restart counted" 1
              (Metrics.get (Metrics.snapshot ()) Metrics.Restarts));
        Metrics.reset ();
        Probe.count Metrics.Restarts;
        Alcotest.(check int) "uninstalled again" 0
          (Metrics.get (Metrics.snapshot ()) Metrics.Restarts));
    Alcotest.test_case "tracer probe routes events, with_trace combines" `Quick
      (fun () ->
        let tr = Trace.create () in
        Probe.install (Probe.tracer tr);
        Alcotest.(check bool) "tracing on" true (Probe.trace_enabled ());
        Probe.emit (ev 0 "a" Trace.Note);
        Probe.uninstall ();
        Probe.emit (ev 0 "dropped" Trace.Note);
        Alcotest.(check int) "one event" 1 (Trace.emitted tr);
        Metrics.reset ();
        Probe.install (Probe.with_trace tr (Probe.metrics ()));
        Probe.count Metrics.Restarts;
        Probe.emit (ev 1 "b" Trace.Note);
        Probe.uninstall ();
        Alcotest.(check int) "count and trace" 1
          (Metrics.get (Metrics.snapshot ()) Metrics.Restarts);
        Alcotest.(check int) "two events" 2 (Trace.emitted tr));
  ]

(* ------------------------------------------------------------------ *)
(* End to end: counters from real runs and from a forced contention     *)
(* schedule.                                                            *)
(* ------------------------------------------------------------------ *)

(* Single-threaded read-only run: nothing can restart, fail a lock
   validation, or delete — those counters must be exactly zero, while
   traversal work must show up. *)
let single_threaded_readonly_test =
  Alcotest.test_case "1-thread read-only run: zero restarts and lock failures"
    `Quick (fun () ->
      let impl = Vbl_harness.Sweep.find_real "vbl" in
      let params =
        {
          Vbl_harness.Runner.threads = 1;
          spec = Vbl_harness.Workload.uniform ~update_percent:0 ~key_range:64;
          duration_s = 0.05;
          warmup_s = 0.0;
          trials = 1;
          seed = 7L;
        }
      in
      let r = Vbl_harness.Runner.run ~metrics:true impl params in
      match r.Vbl_harness.Runner.metrics with
      | None -> Alcotest.fail "expected a metrics snapshot"
      | Some m ->
          List.iter
            (fun c ->
              Alcotest.(check int) ("zero " ^ Metrics.label c) 0 (Metrics.get m c))
            [
              Metrics.Restarts;
              Metrics.Lock_next_at_failures;
              Metrics.Lock_next_at_value_failures;
              Metrics.Validation_failures;
              Metrics.Lock_contended;
              Metrics.Cas_failures;
              Metrics.Logical_deletes;
              Metrics.Physical_unlinks;
            ];
          Alcotest.(check bool) "traversed" true
            (Metrics.get m Metrics.Traversal_steps > 0);
          Alcotest.(check bool) "contains latency measured" true
            (List.mem_assoc "contains" r.Vbl_harness.Runner.latency))

(* Forced contention on the instrumented backend, deterministically:
   T0 = remove 5 runs up to the point where it holds its locks and is
   about to mark X5; T1 = insert 7 then needs X5 (its predecessor) and
   must park; T0 finishes, T1 wakes into a failed lock_next_at
   validation and restarts.  Every interesting counter is pinned. *)
let forced_contention_test =
  Alcotest.test_case "2-thread forced contention: restarts and lock failures"
    `Quick (fun () ->
      let module S = Drive.Vbl_i in
      let t =
        Instr.run_sequential (fun () ->
            let t = S.create () in
            ignore (S.insert t 5);
            t)
      in
      Metrics.reset ();
      Probe.install (Probe.metrics ());
      Fun.protect ~finally:Probe.uninstall (fun () ->
          let exec =
            Exec.create
              [ (fun () -> ignore (S.remove t 5)); (fun () -> ignore (S.insert t 7)) ]
          in
          (* T0 to the brink of its logical delete (locks held). *)
          let rec advance_t0 () =
            match Exec.pending exec 0 with
            | Exec.Access a when a.Instr.name = "X5.del" && a.Instr.kind = Instr.Write
              ->
                ()
            | Exec.Access _ ->
                Exec.step exec 0;
                advance_t0 ()
            | _ -> Alcotest.fail "remove(5) blocked or finished before marking X5"
          in
          advance_t0 ();
          (* T1 locates (X5, tail) and must park on X5's held lock. *)
          let rec advance_t1 () =
            if Exec.runnable exec 1 then begin
              (match Exec.pending exec 1 with
              | Exec.Done -> Alcotest.fail "insert(7) finished without contention"
              | _ -> ());
              Exec.step exec 1;
              advance_t1 ()
            end
          in
          advance_t1 ();
          (match Exec.pending exec 1 with
          | Exec.Blocked l -> Alcotest.(check string) "parked on X5" "X5.lock" l.Instr.l_name
          | _ -> Alcotest.fail "expected insert(7) parked on X5.lock");
          (* Finish T0; its unlink frees the lock, T1 restarts and succeeds. *)
          while Exec.pending exec 0 <> Exec.Done do
            Exec.step exec 0
          done;
          Exec.drain exec;
          let m = Metrics.snapshot () in
          Alcotest.(check bool) "restarted" true (Metrics.get m Metrics.Restarts >= 1);
          Alcotest.(check bool) "lock_next_at failed" true
            (Metrics.get m Metrics.Lock_next_at_failures >= 1);
          Alcotest.(check int) "one logical delete" 1
            (Metrics.get m Metrics.Logical_deletes);
          Alcotest.(check int) "one physical unlink" 1
            (Metrics.get m Metrics.Physical_unlinks);
          Alcotest.(check bool) "locks were acquired" true
            (Metrics.get m Metrics.Lock_acquisitions >= 2));
      Alcotest.(check bool) "5 removed" false
        (Instr.run_sequential (fun () -> S.contains t 5));
      Alcotest.(check bool) "7 inserted" true
        (Instr.run_sequential (fun () -> S.contains t 7)))

(* The conductor emits one trace event per executed step when a tracer
   is installed. *)
let exec_trace_test =
  Alcotest.test_case "conductor emits one event per step" `Quick (fun () ->
      let module S = Drive.Vbl_i in
      let t = Instr.run_sequential (fun () -> S.create ()) in
      let tr = Trace.create () in
      Probe.install (Probe.tracer tr);
      Fun.protect ~finally:Probe.uninstall (fun () ->
          let exec = Exec.create [ (fun () -> ignore (S.contains t 1)) ] in
          Exec.drain exec;
          Alcotest.(check int) "events = steps" (Exec.steps_taken exec)
            (Trace.emitted tr);
          match Trace.events tr with
          | [] -> Alcotest.fail "expected events"
          | e :: _ ->
              Alcotest.(check int) "thread 0" 0 e.Trace.thread;
              Alcotest.(check bool) "starts at the head" true
                (String.length e.Trace.step >= 1 && e.Trace.step.[0] = 'h')))

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("histogram", histogram_tests);
      ("trace", trace_tests);
      ("contention-recorder-interval", contention_tests);
      ("probe", probe_tests);
      ( "end-to-end",
        [ single_threaded_readonly_test; forced_contention_test; exec_trace_test ] );
    ]
