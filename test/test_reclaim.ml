(* Tests for the reclamation layer.

   Real backend: churn workloads must actually recycle (inserts served
   from the free-list), the global epoch must advance, and limbo depth
   (retired minus freed) must stay bounded by a few advance periods
   rather than growing with churn volume.

   Instrumented backend: DPOR explores the epoch protocol itself.  The
   grace-respecting [Instr_reclaim.Safe] backend must check out clean on
   a remove/insert/contains scenario built to recycle a node another
   thread may still be parked on, while the seeded [Instr_reclaim.Eager]
   mutant (retire straight onto the free-list, no grace period) must be
   caught: a traversal resumes on a reinitialized node and returns a
   non-linearizable result. *)

open Vbl_sched
module Metrics = Vbl_obs.Metrics
module Probe = Vbl_obs.Probe
module Ll = Ll_abstract
module Reg = Vbl_lists.Registry

let with_metrics f =
  Metrics.reset ();
  Probe.install (Probe.metrics ());
  Fun.protect ~finally:Probe.uninstall f

(* ------------------------------------------------------------------ *)
(* Real backend: recycling and limbo boundedness under churn.          *)
(* ------------------------------------------------------------------ *)

let rounds = 100
let range = 64

let churn (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s) =
  for _round = 1 to rounds do
    for v = 1 to range do
      ignore (S.insert t v : bool)
    done;
    for v = 1 to range do
      ignore (S.remove t v : bool)
    done
  done

let churn_recycles find name () =
  let module S = (val find name : Vbl_lists.Set_intf.S) in
  let t = S.create () in
  with_metrics (fun () -> churn (module S) t);
  Alcotest.(check (list int)) "empty after churn" [] (S.to_list t);
  (match S.check_invariants t with Ok () -> () | Error m -> Alcotest.fail m);
  let s = Metrics.snapshot () in
  let retired = Metrics.get s Metrics.Reclaim_retired
  and recycled = Metrics.get s Metrics.Reclaim_recycled
  and freed = Metrics.get s Metrics.Reclaim_freed
  and advances = Metrics.get s Metrics.Reclaim_epoch_advances in
  (* Every removed node is retired: [rounds * range] removes succeed. *)
  Alcotest.(check bool)
    (Printf.sprintf "unlinks are retired (%d)" retired)
    true
    (retired >= rounds * range);
  Alcotest.(check bool)
    (Printf.sprintf "inserts recycle (%d)" recycled)
    true (recycled > 1000);
  Alcotest.(check bool) "the epoch advances" true (advances > 0);
  (* Limbo depth is what a leak would inflate: nodes retired but never
     aged out.  It must stay within a few advance periods, not track the
     6400-node churn volume. *)
  let limbo = retired - freed in
  Alcotest.(check bool)
    (Printf.sprintf "limbo bounded (retired %d, freed %d)" retired freed)
    true
    (limbo >= 0 && limbo <= 1024)

(* The non-reclaiming backends must not touch the reclamation counters:
   the hooks are compiled-out no-ops behind [M.reclaiming]. *)
let plain_backend_never_retires () =
  let module S = (val Reg.find_exn "vbl" : Vbl_lists.Set_intf.S) in
  let t = S.create () in
  with_metrics (fun () -> churn (module S) t);
  let s = Metrics.snapshot () in
  Alcotest.(check int) "no retires" 0 (Metrics.get s Metrics.Reclaim_retired);
  Alcotest.(check int) "no recycles" 0 (Metrics.get s Metrics.Reclaim_recycled)

let real_cases =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": churn recycles, limbo bounded") `Quick
        (churn_recycles (fun n -> Reg.find_exn n) name))
    [ "vbl-reclaim"; "lazy-reclaim"; "harris-michael-reclaim" ]
  @ [
      Alcotest.test_case "vbl-sharded-8-reclaim: churn recycles, limbo bounded"
        `Quick
        (churn_recycles
           (fun n -> Vbl_shard.Registry.find_exn n)
           "vbl-sharded-8-reclaim");
      Alcotest.test_case "vbl (plain): reclamation counters stay zero" `Quick
        plain_backend_never_retires;
    ]

(* ------------------------------------------------------------------ *)
(* Instrumented backend: DPOR over the epoch protocol.                 *)
(* ------------------------------------------------------------------ *)

let quick_config =
  { Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }

(* The use-after-reclaim shape: with initial contents [1; 2], one thread
   removes 1 (retiring its node), another inserts 3 (whose recycle can be
   served that very node), and a third runs [contains 2] — which may be
   parked on the removed node when it is reinitialized to value 3.
   Without a grace period the resumed traversal sees 3 >= 2, concludes 2
   is absent, and returns [false] even though 2 is in the set in every
   linearization. *)
let reclaim_scenario impl =
  Drive.explore_scenario impl ~initial:[ 1; 2 ]
    ~ops:[ Ll.remove 1; Ll.insert 3; Ll.contains 2 ]

module Vbl_eager_i = struct
  include Vbl_lists.Vbl_list.Make (Vbl_memops.Instr_reclaim.Eager)

  let name = "vbl-reclaim-eager"
end

let safe_explores_clean name () =
  let report =
    Explore.run ~config:quick_config (reclaim_scenario (Drive.find_instrumented name))
  in
  (match report.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "safe reclamation fails under DPOR: %a" Explore.pp_failure f);
  Alcotest.(check bool) "exploration not truncated" true (not report.Explore.truncated);
  Alcotest.(check bool) "more than one execution" true (report.Explore.executions > 1)

let eager_mutant_caught () =
  let report =
    Explore.run ~config:quick_config (reclaim_scenario (module Vbl_eager_i))
  in
  match report.Explore.failure with
  | Some (Explore.Not_linearizable _) | Some (Explore.Invariant_broken _) -> ()
  | Some f ->
      Alcotest.failf "eager mutant failed, but not as a safety violation: %a"
        Explore.pp_failure f
  | None -> Alcotest.fail "use-after-reclaim mutant escaped DPOR"

let dpor_cases =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": DPOR clean under the grace period") `Quick
        (safe_explores_clean name))
    [ "vbl-reclaim"; "lazy-reclaim"; "harris-michael-reclaim" ]
  @ [
      Alcotest.test_case "eager mutant: use-after-reclaim caught" `Quick
        eager_mutant_caught;
    ]

let () =
  Alcotest.run "reclaim"
    [ ("real-churn", real_cases); ("dpor", dpor_cases) ]
